#!/usr/bin/env python
"""The Fig. 6 APEX prototype, emulated end to end.

Assembles a pixel kernel with the two-level toolchain, serializes the
object code into the PRG memory, streams a 64x64 test pattern from the
IMAGE memory through the Ring-8, writes results to the VIDEO memory and
scans it out with the VGA-controller model.  Renders the frames as ASCII
so the effect of each kernel is visible in a terminal.

Run:  python examples/vga_prototype.py
"""

import numpy as np

from repro.host.prototype import (
    IMAGE_SIDE,
    reference_kernel,
    run_prototype,
)

ASCII_RAMP = " .:-=+*#%@"


def test_pattern(side=IMAGE_SIDE):
    """Concentric rings + a bright square: edges in every direction."""
    y, x = np.mgrid[0:side, 0:side]
    cy = cx = side / 2
    radius = np.sqrt((y - cy) ** 2 + (x - cx) ** 2)
    pattern = (127 + 120 * np.cos(radius / 3.0)).astype(int)
    pattern[8:20, 8:20] = 250
    return np.clip(pattern, 0, 255)


def ascii_render(frame, step=4):
    """Downsample a frame to terminal-size ASCII art."""
    small = frame[::step, ::step]
    lo, hi = small.min(), max(small.max(), small.min() + 1)
    lines = []
    for row in small:
        idx = ((row - lo) * (len(ASCII_RAMP) - 1) // (hi - lo))
        lines.append("".join(ASCII_RAMP[int(i)] for i in idx))
    return "\n".join(lines)


def main() -> None:
    image = test_pattern()
    print("IMAGE memory (input pattern):")
    print(ascii_render(image))
    for operation in ("invert", "threshold", "edge"):
        result = run_prototype(image, operation)
        expected = reference_kernel(image, operation)
        assert np.array_equal(result.framebuffer, expected)
        print(f"\nVGA output after '{operation}' "
              f"({result.cycles} fabric cycles, "
              f"{result.frames_scanned} frame scanned, verified):")
        print(ascii_render(result.framebuffer))
    print("\nPRG memory held the serialized object code; the core was "
          "'loaded with the generated object code' as in Fig. 6.")


if __name__ == "__main__":
    main()
