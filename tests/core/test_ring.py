"""Tests for the ring fabric and its clock engine."""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry, make_ring
from repro.core.switch import PortSource
from repro.errors import ConfigurationError, SimulationError


def mov_out_in1():
    return MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT)


class TestGeometry:
    def test_ring8_is_4x2(self):
        g = RingGeometry.ring(8)
        assert (g.layers, g.width, g.dnodes) == (4, 2, 8)

    def test_ring64_is_32x2(self):
        g = RingGeometry.ring(64)
        assert (g.layers, g.dnodes) == (32, 64)

    def test_custom_width(self):
        g = RingGeometry.ring(16, width=4)
        assert (g.layers, g.width) == (4, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            RingGeometry.ring(9, width=2)

    def test_minimum_layers(self):
        with pytest.raises(ConfigurationError):
            RingGeometry(layers=1)

    def test_width_positive(self):
        with pytest.raises(ConfigurationError):
            RingGeometry(layers=4, width=0)

    def test_pipeline_depth_positive(self):
        with pytest.raises(ConfigurationError):
            RingGeometry(layers=4, width=2, pipeline_depth=0)


class TestStructure:
    def test_dnode_addressing(self, ring8):
        dn = ring8.dnode(3, 1)
        assert (dn.layer, dn.position) == (3, 1)

    def test_dnode_bounds(self, ring8):
        with pytest.raises(ConfigurationError):
            ring8.dnode(4, 0)
        with pytest.raises(ConfigurationError):
            ring8.dnode(0, 2)

    def test_switch_bounds(self, ring8):
        with pytest.raises(ConfigurationError):
            ring8.switch(4)

    def test_all_dnodes_count(self, ring8):
        assert len(ring8.all_dnodes()) == 8

    def test_upstream_wraps_around(self, ring8):
        assert ring8.upstream_layer(0) == 3
        assert ring8.upstream_layer(1) == 0


class TestDataflow:
    def test_systolic_advance_one_layer_per_cycle(self, ring8):
        cfg = ring8.config
        cfg.write_switch_route(0, 0, 1, PortSource.host(0))
        cfg.write_microword(0, 0, mov_out_in1())
        for k in range(1, 4):
            cfg.write_switch_route(k, 0, 1, PortSource.up(0))
            cfg.write_microword(k, 0, mov_out_in1())
        values = iter([7, 0, 0, 0, 0])
        ring8.run(4, host_in=lambda ch: next(values))
        # after 4 cycles the value reached layer 3
        assert ring8.dnode(3, 0).out == 7

    def test_ring_closure(self, ring8):
        """Data wraps from the last layer back to layer 0."""
        cfg = ring8.config
        for k in range(4):
            cfg.write_switch_route(k, 0, 1, PortSource.up(0))
            cfg.write_microword(k, 0, MicroWord(
                Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=1))
        # seed layer 3's output, then let the token circulate
        ring8.dnode(3, 0)._out = 100
        ring8.run(4)
        # token passed layers 0,1,2,3: +1 each
        assert ring8.dnode(3, 0).out == 104

    def test_bus_broadcast(self, ring8):
        for k in range(4):
            ring8.config.write_microword(k, 0, MicroWord(
                Opcode.MOV, Source.BUS, dst=Dest.OUT))
        ring8.step(bus=55)
        assert all(ring8.dnode(k, 0).out == 55 for k in range(4))

    def test_host_port_requires_reader(self, ring8):
        ring8.config.write_switch_route(0, 0, 1, PortSource.host(0))
        ring8.config.write_microword(0, 0, mov_out_in1())
        with pytest.raises(SimulationError, match="host"):
            ring8.step()

    def test_unrouted_port_reads_zero(self, ring8):
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=9))
        ring8.step()
        assert ring8.dnode(0, 0).out == 9

    def test_evaluation_order_independent(self):
        """Both lanes swap values through the switch simultaneously."""
        ring = make_ring(4)
        cfg = ring.config
        # layer 1 reads layer 0 crossed over
        cfg.write_switch_route(1, 0, 1, PortSource.up(1))
        cfg.write_switch_route(1, 1, 1, PortSource.up(0))
        cfg.write_microword(1, 0, mov_out_in1())
        cfg.write_microword(1, 1, mov_out_in1())
        ring.dnode(0, 0)._out = 1
        ring.dnode(0, 1)._out = 2
        ring.step()
        assert ring.dnode(1, 0).out == 2
        assert ring.dnode(1, 1).out == 1


class TestFifos:
    def test_push_and_consume(self, ring8):
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT, flags=Flag.POP_FIFO1))
        ring8.push_fifo(0, 0, 1, [10, 20])
        ring8.step()
        assert ring8.dnode(0, 0).out == 10
        ring8.step()
        assert ring8.dnode(0, 0).out == 20

    def test_peek_without_pop(self, ring8):
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT))
        ring8.push_fifo(0, 0, 1, [10, 20])
        ring8.run(2)
        assert ring8.dnode(0, 0).out == 10  # never popped

    def test_underflow_counts_by_default(self, ring8):
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT, flags=Flag.POP_FIFO1))
        ring8.step()
        assert ring8.dnode(0, 0).out == 0
        # Two distinct underflow events in the one cycle: the evaluate-phase
        # peek found the FIFO empty, and the commit-phase pop did too.  A
        # pop that underflows must not be billed as a delivered pop.
        assert ring8.fifo_underflows == 2
        assert ring8.dnode(0, 0).stats.fifo_pops == 0

    def test_pop_stats_count_only_real_dequeues(self, ring8):
        # One queued word, two pop cycles: exactly one pop landed; the
        # second cycle's peek and pop both underflow.
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT, flags=Flag.POP_FIFO1))
        ring8.push_fifo(0, 0, 1, [42])
        ring8.run(2)
        assert ring8.dnode(0, 0).stats.fifo_pops == 1
        assert ring8.fifo_underflows == 2

    def test_reset_keeps_fifo_handles_live(self, ring8):
        # reset() must clear the deques in place: a producer holding a
        # queue handle from fifo() keeps feeding the same Dnode afterwards.
        handle = ring8.fifo(0, 0, 1)
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT, flags=Flag.POP_FIFO1))
        ring8.push_fifo(0, 0, 1, [10, 20])
        ring8.step()
        ring8.reset()
        assert ring8.fifo(0, 0, 1) is handle
        assert len(handle) == 0
        handle.append(33)
        ring8.step()
        assert ring8.dnode(0, 0).out == 33
        assert ring8.fifo_underflows == 0

    def test_strict_underflow_raises(self):
        ring = Ring(RingGeometry.ring(8), strict_fifos=True)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT))
        with pytest.raises(SimulationError, match="empty FIFO"):
            ring.step()

    def test_channel_validation(self, ring8):
        with pytest.raises(ConfigurationError):
            ring8.push_fifo(0, 0, 3, [1])

    def test_push_validates_values(self, ring8):
        with pytest.raises(ValueError):
            ring8.push_fifo(0, 0, 1, [-5])

    def test_single_int_push(self, ring8):
        ring8.push_fifo(0, 0, 1, 7)
        assert list(ring8.fifo(0, 0, 1)) == [7]


class TestEngine:
    def test_cycle_counter(self, ring8):
        ring8.run(5)
        assert ring8.cycles == 5

    def test_negative_cycles_rejected(self, ring8):
        with pytest.raises(SimulationError):
            ring8.run(-1)

    def test_trace_callback(self, ring8):
        seen = []
        ring8.set_trace(lambda r: seen.append(r.cycles))
        ring8.run(3)
        assert seen == [1, 2, 3]

    def test_reset_preserves_configuration(self, ring8):
        mw = MicroWord(Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=3)
        ring8.config.write_microword(0, 0, mw)
        ring8.config.write_mode(0, 0, DnodeMode.LOCAL)
        ring8.run(2)
        ring8.reset()
        assert ring8.cycles == 0
        assert ring8.dnode(0, 0).global_word == mw
        assert ring8.dnode(0, 0).mode is DnodeMode.LOCAL

    def test_bus_validated(self, ring8):
        with pytest.raises(ValueError):
            ring8.step(bus=-1)


class TestStatistics:
    def test_utilization_zero_when_idle(self, ring8):
        ring8.run(4)
        assert ring8.utilization() == 0.0

    def test_utilization_counts_active_dnodes(self, ring8):
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.ADD, Source.ZERO, Source.IMM, Dest.OUT, imm=1))
        ring8.run(4)
        assert ring8.utilization() == pytest.approx(1 / 8)
        assert ring8.instructions_executed == 4

    def test_arithmetic_ops_counts_dual(self, ring8):
        ring8.config.write_microword(0, 0, MicroWord(
            Opcode.MAC, Source.ZERO, Source.ZERO, Dest.R0))
        ring8.run(2)
        assert ring8.arithmetic_ops_executed == 4

    def test_utilization_before_run(self, ring8):
        assert ring8.utilization() == 0.0

    def test_repr(self, ring8):
        assert "Ring-8" in repr(ring8)
