"""FIFO / delay-line emulation — a local-mode macro-operator.

Paper §4.1: in stand-alone mode the Dnode "is able to compute various
algorithms like MAC, serial digital filters, FIFO emulation without RISC
controller overheading".  A chain of pass-through Dnodes is a clocked
FIFO of one word per Dnode; reading the upstream switch's feedback
pipeline taps stretches each hop by up to 4 extra cycles, so *depth* words
of delay cost only ``ceil(depth / (1 + pipeline_depth))`` Dnodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import word
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.errors import ConfigurationError
from repro.host.system import RingSystem
from repro.kernels.taps import tap_lane0


@dataclass
class FifoPlan:
    """How a requested delay maps onto Dnodes and pipeline taps."""

    depth: int
    dnodes_used: int
    taps_per_hop: List[int]   # delay contributed by each hop


def plan_delay(depth: int, pipeline_depth: int = 4) -> FifoPlan:
    """Plan a FIFO of *depth* words as (Dnode + pipeline-tap) hops.

    The first hop must read the host port directly (the feedback
    pipelines only hold Dnode outputs) and costs one cycle; each further
    hop through a Dnode costs one cycle plus up to *pipeline_depth* extra
    cycles when it reads tap ``Rp(i, .)`` instead of the direct input.
    Total chain latency is ``depth + 1`` cycles, which pops each word
    exactly *depth* slots after its push.
    """
    if depth < 1:
        raise ConfigurationError(f"FIFO depth must be >= 1, got {depth}")
    per_hop_max = 1 + pipeline_depth
    taps = [1]
    remaining = depth  # remaining latency after the mandatory first hop
    while remaining > 0:
        hop = min(remaining, per_hop_max)
        taps.append(hop)
        remaining -= hop
    return FifoPlan(depth=depth, dnodes_used=len(taps), taps_per_hop=taps)


def build_delay_line(depth: int,
                     ring: Optional[Ring] = None) -> RingSystem:
    """Configure lane 0 of *ring* as a *depth*-cycle FIFO from host ch 0."""
    plan = plan_delay(depth)
    if ring is None:
        ring = Ring(RingGeometry(layers=max(plan.dnodes_used, 2), width=2))
    if plan.dnodes_used > ring.geometry.layers:
        raise ConfigurationError(
            f"delay of {depth} needs {plan.dnodes_used} layers, ring has "
            f"{ring.geometry.layers}"
        )
    cfg = ring.config
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    for k, hop in enumerate(plan.taps_per_hop):
        if hop == 1:
            source = Source.IN1
            if k > 0:
                cfg.write_switch_route(k, 0, 1, PortSource.up(0))
        else:
            # Rp(i, 1) = upstream lane-0 value, i cycles older than IN1.
            source = Source.rp(hop - 1, 1)
            if k == 0:
                raise ConfigurationError(
                    "first hop must read the host port directly; "
                    "increase the ring length"
                )
        cfg.write_microword(k, 0, MicroWord(Opcode.MOV, source,
                                            dst=Dest.OUT))
    return RingSystem(ring)


def delay_line(signal: Sequence[int], depth: int,
               ring: Optional[Ring] = None) -> List[int]:
    """Push *signal* through a *depth*-cycle FIFO; returns delayed output.

    The output equals ``[0]*depth + signal`` truncated to ``len(signal)``
    — i.e. exactly a hardware FIFO primed with zeros.
    """
    system = build_delay_line(depth, ring)
    plan = plan_delay(depth)
    samples = [word.from_signed(int(v)) for v in signal]
    system.data.stream(0, samples)
    out_layer = plan.dnodes_used - 1
    tap = system.data.add_tap(out_layer, 0, limit=len(samples))
    system.run(len(samples))
    return [word.to_signed(v) for v in tap_lane0(tap)]
