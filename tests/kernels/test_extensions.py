"""Tests for the kernel extensions: multilevel DWT and frame motion."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels.motion_estimation import estimate_frame_motion
from repro.kernels.reference import (
    dwt53_2d_multilevel,
    idwt53_2d_multilevel,
)
from repro.kernels.wavelet import (
    dwt53_2d_multilevel_fabric,
    wavelet_cycle_model,
)


class TestMultilevelDwtReference:
    def test_one_level_equals_single(self, rng):
        from repro.kernels.reference import dwt53_2d

        img = rng.integers(0, 256, (8, 8))
        assert np.array_equal(dwt53_2d_multilevel(img, 1), dwt53_2d(img))

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_perfect_reconstruction(self, rng, levels):
        img = rng.integers(-500, 500, (16, 16))
        pyramid = dwt53_2d_multilevel(img, levels)
        assert np.array_equal(idwt53_2d_multilevel(pyramid, levels), img)

    def test_deeper_levels_only_touch_ll(self, rng):
        img = rng.integers(0, 256, (16, 16))
        one = dwt53_2d_multilevel(img, 1)
        two = dwt53_2d_multilevel(img, 2)
        assert np.array_equal(one[8:, :], two[8:, :])
        assert np.array_equal(one[:8, 8:], two[:8, 8:])

    def test_too_deep_rejected(self, rng):
        img = rng.integers(0, 256, (4, 4))
        with pytest.raises(SimulationError, match="split"):
            dwt53_2d_multilevel(img, 3)

    def test_levels_validated(self, rng):
        img = rng.integers(0, 256, (4, 4))
        with pytest.raises(SimulationError):
            dwt53_2d_multilevel(img, 0)


class TestMultilevelDwtFabric:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_matches_reference(self, rng, levels):
        img = rng.integers(0, 256, (16, 16))
        fabric, _ = dwt53_2d_multilevel_fabric(img, levels)
        assert np.array_equal(fabric, dwt53_2d_multilevel(img, levels))

    def test_cycle_model_matches(self, rng):
        img = rng.integers(0, 256, (16, 16))
        _, cycles = dwt53_2d_multilevel_fabric(img, 2)
        assert cycles == wavelet_cycle_model(16, 16, levels=2)

    def test_dyadic_cost_series(self):
        """Deeper pyramids converge to ~4/3 of one level's cost."""
        one = wavelet_cycle_model(512, 512, levels=1)
        five = wavelet_cycle_model(512, 512, levels=5)
        assert five / one == pytest.approx(4 / 3, rel=0.02)


class TestFrameMotion:
    def test_recovers_uniform_shift(self, rng):
        """A shifted frame (valid-region check) yields the true motion
        vector on interior blocks."""
        base = rng.integers(0, 256, (24, 24))
        prev = base
        cur = np.zeros_like(base)
        # shift content down by 2, right by 1 (borders copied: ignore)
        cur[2:, 1:] = base[:-2, :-1]
        cur[:2, :] = base[:2, :]
        cur[:, :1] = base[:, :1]
        result = estimate_frame_motion(prev, cur, block=8, displacement=4)
        # interior block (1,1) must see displacement (-2, -1)
        assert tuple(result.vectors[1, 1]) == (-2, -1)
        assert result.sads[1, 1] == 0

    def test_identity_frames_zero_motion(self, rng):
        frame = rng.integers(0, 256, (16, 16))
        result = estimate_frame_motion(frame, frame, block=8,
                                       displacement=2)
        assert np.all(result.vectors == 0)
        assert np.all(result.sads == 0)

    def test_block_grid_shape(self, rng):
        frame = rng.integers(0, 256, (16, 24))
        result = estimate_frame_motion(frame, frame, block=8,
                                       displacement=2)
        assert result.blocks == (2, 3)
        assert result.vectors.shape == (2, 3, 2)

    def test_cycles_accumulate(self, rng):
        frame = rng.integers(0, 256, (16, 16))
        result = estimate_frame_motion(frame, frame, block=8,
                                       displacement=2)
        assert result.cycles > 0

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError, match="shapes"):
            estimate_frame_motion(np.zeros((8, 8)), np.zeros((8, 16)))

    def test_block_divisibility(self):
        with pytest.raises(SimulationError, match="multiple"):
            estimate_frame_motion(np.zeros((10, 10)), np.zeros((10, 10)),
                                  block=8)
