"""Tests for the data controller: stream channels and output taps."""

import pytest

from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.host.streams import DataController, OutputTap, StreamChannel
from repro.errors import HostError


class TestStreamChannel:
    def test_presents_head_until_advance(self):
        ch = StreamChannel([1, 2, 3])
        assert ch.current() == 1
        assert ch.current() == 1
        ch.advance()
        assert ch.current() == 2

    def test_underrun_presents_idle(self):
        ch = StreamChannel(idle_value=9)
        assert ch.current() == 9
        assert ch.underruns == 1

    def test_advance_on_empty_is_noop(self):
        ch = StreamChannel()
        ch.advance()
        assert ch.delivered == 0

    def test_delivered_counter(self):
        ch = StreamChannel([1, 2])
        ch.advance()
        ch.advance()
        ch.advance()
        assert ch.delivered == 2

    def test_push_single_int(self):
        ch = StreamChannel()
        ch.push(5)
        assert ch.pending() == 1

    def test_push_validates(self):
        with pytest.raises(ValueError):
            StreamChannel([70000])


class TestOutputTap:
    def test_collects_in_order(self):
        tap = OutputTap(0, 0)
        for v in (1, 2, 3):
            tap.observe(v)
        assert tap.samples == [1, 2, 3]

    def test_skip(self):
        tap = OutputTap(0, 0, skip=2)
        for v in (1, 2, 3, 4):
            tap.observe(v)
        assert tap.samples == [3, 4]

    def test_every(self):
        tap = OutputTap(0, 0, every=3)
        for v in range(9):
            tap.observe(v)
        assert tap.samples == [0, 3, 6]

    def test_skip_and_every_combined(self):
        tap = OutputTap(0, 0, skip=1, every=2)
        for v in range(8):
            tap.observe(v)
        assert tap.samples == [1, 3, 5, 7]

    def test_limit(self):
        tap = OutputTap(0, 0, limit=2)
        for v in range(5):
            tap.observe(v)
        assert tap.samples == [0, 1]
        assert tap.full

    def test_unlimited_never_full(self):
        tap = OutputTap(0, 0)
        tap.observe(1)
        assert not tap.full

    def test_validation(self):
        with pytest.raises(HostError):
            OutputTap(0, 0, skip=-1)
        with pytest.raises(HostError):
            OutputTap(0, 0, every=0)
        with pytest.raises(HostError):
            OutputTap(0, 0, limit=-1)


class TestDataController:
    def test_channels_created_on_demand(self):
        dc = DataController()
        assert dc.channel(3).pending() == 0

    def test_channel_index_validated(self):
        with pytest.raises(HostError):
            DataController().channel(-1)

    def test_host_in_reads_current(self):
        dc = DataController()
        dc.stream(0, [7, 8])
        assert dc.host_in(0) == 7

    def test_advance_moves_all_channels(self):
        dc = DataController()
        dc.stream(0, [1, 2])
        dc.stream(1, [10, 20])
        dc.advance()
        assert dc.host_in(0) == 2
        assert dc.host_in(1) == 20

    def test_collect_samples_dnode_out(self):
        ring = make_ring(4)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=42))
        dc = DataController()
        tap = dc.add_tap(0, 0)
        ring.step()
        dc.collect(ring)
        assert tap.samples == [42]

    def test_word_counters(self):
        dc = DataController()
        dc.stream(0, [1, 2, 3])
        dc.advance()
        dc.advance()
        tap = dc.add_tap(0, 0)
        tap.observe(5)
        assert dc.total_words_in() == 2
        assert dc.total_words_out() == 1
