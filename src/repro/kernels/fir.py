"""FIR ("RIF") filters on the Systolic Ring.

Two mappings, matching the paper's two operating points:

* :func:`spatial_fir` — one tap per layer, **1 sample/cycle**.  Lane 0
  carries the sample stream (one-cycle delay per layer), lane 1 carries
  the travelling partial sum; tap *k*'s coefficient lives in the
  configuration immediate of a ``MADD`` (multiplier chained into the
  adder).  The one-cycle-older sample each tap needs comes from the
  upstream switch's feedback pipeline (``Rp(1, 1)``) — exactly the
  paper's "the required delays on recursive branch are automatically
  achieved in them".

* :func:`shared_fir` — the resource-shared variant the conclusion calls
  out ("the integration of a RIF filter using resource sharing ... is
  impossible without very efficient dynamical reconfiguration"): a
  *single* Dnode in local mode computes up to 4 taps, keeping the sample
  window in its register file, at 1 sample per ``2T - 1`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.kernels.taps import tap_lane0
from repro.errors import ConfigurationError
from repro.host.system import RingSystem


@dataclass
class FirResult:
    """Outcome of a fabric FIR run."""

    outputs: List[int]        # signed filter outputs
    cycles: int               # fabric cycles consumed
    dnodes_used: int
    samples_per_cycle: float  # sustained throughput

    @property
    def cycles_per_sample(self) -> float:
        return 1.0 / self.samples_per_cycle


def _check_taps(taps: Sequence[int], maximum: int) -> List[int]:
    coeffs = [int(t) for t in taps]
    if not 1 <= len(coeffs) <= maximum:
        raise ConfigurationError(
            f"this mapping supports 1..{maximum} taps, got {len(coeffs)}"
        )
    return coeffs


def build_spatial_fir(taps: Sequence[int],
                      ring: Optional[Ring] = None) -> RingSystem:
    """Configure a ring as a T-tap transversal FIR (one tap per layer).

    Layer 0 consumes the host stream on channel 0 with both lanes (pass +
    first product); each further layer k passes the delayed sample on
    lane 0 and executes ``partial + c_k * x`` on lane 1.
    """
    coeffs = None
    if ring is None:
        layers = max(len(list(taps)), 2)
        ring = Ring(RingGeometry(layers=layers, width=2))
    coeffs = _check_taps(taps, ring.geometry.layers)
    cfg = ring.config

    # Layer 0: lane 0 passes x, lane 1 computes c0 * x.
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    cfg.write_switch_route(0, 1, 1, PortSource.host(0))
    cfg.write_microword(0, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    cfg.write_microword(0, 1, MicroWord(
        Opcode.MUL, Source.IN1, Source.IMM, Dest.OUT,
        imm=word.from_signed(coeffs[0])))

    for k in range(1, len(coeffs)):
        cfg.write_switch_route(k, 1, 1, PortSource.up(1))   # partial
        # Lane 0 re-times x through the feedback pipeline: two cycles of
        # delay per layer, so the sample stream and the travelling
        # partial (one cycle per layer) stay tap-aligned at every depth.
        cfg.write_microword(k, 0, MicroWord(Opcode.MOV, Source.rp(1, 1),
                                            dst=Dest.OUT))
        # partial + c_k * x(one more cycle older, same pipeline)
        cfg.write_microword(k, 1, MicroWord(
            Opcode.MADD, Source.IN1, Source.rp(1, 1), Dest.OUT,
            imm=word.from_signed(coeffs[k])))
    return RingSystem(ring)


def spatial_fir(taps: Sequence[int], signal: Sequence[int],
                ring: Optional[Ring] = None) -> FirResult:
    """Run the spatial FIR over *signal* and return signed outputs.

    Bit-exact against :func:`repro.kernels.reference.fir` whenever the
    true outputs fit in 16 bits (otherwise both wrap identically mod
    2^16 only on the fabric side).
    """
    system = build_spatial_fir(taps, ring)
    n_taps = len(list(taps))
    samples = [word.from_signed(int(v)) for v in signal]
    system.data.stream(0, samples)
    out_layer = n_taps - 1
    tap = system.data.add_tap(out_layer, 1, skip=n_taps - 1,
                              limit=len(samples))
    system.run(len(samples) + n_taps)
    outputs = [word.to_signed(v) for v in tap_lane0(tap)]
    return FirResult(
        outputs=outputs,
        cycles=system.cycles,
        dnodes_used=2 * n_taps,
        samples_per_cycle=1.0,
    )


def shared_fir_program(taps: Sequence[int]) -> List[MicroWord]:
    """The local-mode loop of the resource-shared FIR (<= 4 taps).

    Slot layout for T taps (period ``2T - 1`` cycles)::

        0:      mul  r0, fifo1, #c0          ; newest sample (peek)
        1..T-1: madd r0, r0, r<k>, #ck       ; window from registers
                (the last one carries [wout] to publish y)
        T..:    mov  r<k>, r<k-1>            ; shift the window
        last:   mov  r1, fifo1 [pop1]        ; consume the sample

    A single-tap filter degenerates to one ``mul ... [wout] [pop1]`` slot.
    """
    coeffs = _check_taps(taps, 4)
    t = len(coeffs)
    if t == 1:
        return [MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.OUT,
                          flags=Flag.POP_FIFO1,
                          imm=word.from_signed(coeffs[0]))]
    program = [MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.R0,
                         imm=word.from_signed(coeffs[0]))]
    for k in range(1, t):
        flags = Flag.WRITE_OUT if k == t - 1 else Flag.NONE
        program.append(MicroWord(
            Opcode.MADD, Source.R0, Source(int(Source.R0) + k), Dest.R0,
            flags=flags, imm=word.from_signed(coeffs[k])))
    for k in range(t - 1, 1, -1):
        program.append(MicroWord(
            Opcode.MOV, Source(int(Source.R0) + k - 1),
            dst=Dest(int(Dest.R0) + k)))
    program.append(MicroWord(Opcode.MOV, Source.FIFO1, dst=Dest.R1,
                             flags=Flag.POP_FIFO1))
    return program


def interleaved_fir_program(taps_a: Sequence[int],
                            taps_b: Sequence[int]) -> List[MicroWord]:
    """One Dnode running TWO independent 2-tap filters, time-multiplexed.

    The paper motivates the architecture with "multi-standard handies" —
    one fabric serving several protocols at once.  At Dnode granularity
    the local sequencer already supports it: channel A streams through
    FIFO1 (window in R1), channel B through FIFO2 (window in R2), and the
    six slots interleave the two filters::

        0: mul  r0, fifo1, #a0          3: mul  r0, fifo2, #b0
        1: madd r0, r0, r1, #a1 [wout]  4: madd r0, r0, r2, #b1 [wout]
        2: mov  r1, fifo1 [pop1]        5: mov  r2, fifo2 [pop2]

    OUT alternates y_A, y_B every 3 cycles.
    """
    a = _check_taps(taps_a, 2)
    b = _check_taps(taps_b, 2)
    if len(a) != 2 or len(b) != 2:
        raise ConfigurationError(
            "the interleaved mapping multiplexes two 2-tap filters"
        )
    return [
        MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.R0,
                  imm=word.from_signed(a[0])),
        MicroWord(Opcode.MADD, Source.R0, Source.R1, Dest.R0,
                  flags=Flag.WRITE_OUT, imm=word.from_signed(a[1])),
        MicroWord(Opcode.MOV, Source.FIFO1, dst=Dest.R1,
                  flags=Flag.POP_FIFO1),
        MicroWord(Opcode.MUL, Source.FIFO2, Source.IMM, Dest.R0,
                  imm=word.from_signed(b[0])),
        MicroWord(Opcode.MADD, Source.R0, Source.R2, Dest.R0,
                  flags=Flag.WRITE_OUT, imm=word.from_signed(b[1])),
        MicroWord(Opcode.MOV, Source.FIFO2, dst=Dest.R2,
                  flags=Flag.POP_FIFO2),
    ]


def interleaved_fir(taps_a: Sequence[int], taps_b: Sequence[int],
                    signal_a: Sequence[int], signal_b: Sequence[int],
                    ring: Optional[Ring] = None,
                    layer: int = 0, position: int = 0,
                    ) -> Tuple[List[int], List[int]]:
    """Run two independent 2-tap FIRs on one Dnode (multi-standard mode).

    Returns ``(outputs_a, outputs_b)``, each bit-exact against
    :func:`repro.kernels.reference.fir` for its own channel.
    """
    if len(signal_a) != len(signal_b):
        raise ConfigurationError(
            "the interleaved channels must have equal length"
        )
    if ring is None:
        ring = Ring(RingGeometry(layers=2, width=2))
    program = interleaved_fir_program(taps_a, taps_b)
    ring.config.write_local_program(layer, position, program)
    ring.config.write_mode(layer, position, DnodeMode.LOCAL)
    ring.push_fifo(layer, position, 1,
                   [word.from_signed(int(v)) for v in signal_a])
    ring.push_fifo(layer, position, 2,
                   [word.from_signed(int(v)) for v in signal_b])
    dn = ring.dnode(layer, position)
    out_a: List[int] = []
    out_b: List[int] = []
    for _ in signal_a:
        for slot in range(6):
            ring.step()
            if slot == 1:
                out_a.append(word.to_signed(dn.out))
            elif slot == 4:
                out_b.append(word.to_signed(dn.out))
    return out_a, out_b


def shared_fir(taps: Sequence[int], signal: Sequence[int],
               ring: Optional[Ring] = None,
               layer: int = 0, position: int = 0) -> FirResult:
    """Run the resource-shared FIR on one Dnode of *ring*."""
    coeffs = _check_taps(taps, 4)
    if ring is None:
        ring = Ring(RingGeometry(layers=2, width=2))
    program = shared_fir_program(coeffs)
    period = len(program)
    ring.config.write_local_program(layer, position, program)
    ring.config.write_mode(layer, position, DnodeMode.LOCAL)

    samples = [word.from_signed(int(v)) for v in signal]
    ring.push_fifo(layer, position, 1, samples)

    t = len(coeffs)
    outputs: List[int] = []
    dn = ring.dnode(layer, position)
    publish_slot = t - 1 if t > 1 else 0
    for n in range(len(samples)):
        # run one period; y_n becomes visible after the publish slot
        for slot in range(period):
            ring.step()
            if slot == publish_slot:
                outputs.append(word.to_signed(dn.out))
    return FirResult(
        outputs=outputs,
        cycles=ring.cycles,
        dnodes_used=1,
        samples_per_cycle=1.0 / period,
    )
