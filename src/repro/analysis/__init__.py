"""Analysis helpers: instrumentation, tracing, and report rendering.

* :mod:`repro.analysis.metrics` — always-on counter aggregation with
  JSON / Prometheus export (tier 1 of the observability layer);
* :mod:`repro.analysis.trace` — per-cycle and sampled waveform capture
  with VCD export (tier 2);
* :mod:`repro.analysis.mips` — the §5.1 comparative numbers (peak MIPS,
  sustained rates measured from simulator statistics, bandwidth
  ceilings);
* :mod:`repro.analysis.report` — plain-text table rendering shared by
  the benchmark harnesses and examples.
"""

from repro.analysis.metrics import (
    Metric,
    MetricsRegistry,
    MetricsSnapshot,
    collect_metrics,
)
from repro.analysis.mips import (
    ring_peak_mips,
    ring_peak_mops,
    measured_mips,
    theoretical_bandwidth_bytes_per_s,
    comparative_summary,
)
from repro.analysis.report import render_table
from repro.analysis.trace import Probe, SignalTrace, parse_vcd, write_vcd

__all__ = [
    "Metric",
    "MetricsRegistry",
    "MetricsSnapshot",
    "collect_metrics",
    "Probe",
    "SignalTrace",
    "parse_vcd",
    "write_vcd",
    "ring_peak_mips",
    "ring_peak_mops",
    "measured_mips",
    "theoretical_bandwidth_bytes_per_s",
    "comparative_summary",
    "render_table",
]
