"""Time-based effects on ring FIFOs: chorus voice and feedback echo.

Two delay effects, one per feedback mechanism the fabric offers:

* :func:`chorus_graph` — feed-forward: ``y = (x[n] + x[n-depth]) >> 1``.
  Depths up to 4 ride the switches' feedback pipelines directly; deeper
  voices chain ``delay -> mov -> delay`` hops (each mov materialises the
  stream on a Dnode so the next pipeline segment can tap it) — the
  compiled flavour of the paper's Dnode-as-FIFO macro-operator.
* :func:`build_echo` — **feedback through the ring closure**: switch 0
  reads the *last* layer, so an adder at layer 0 summing
  ``host + up(lane)`` with a MOV relay chain down the lane and a MULH
  gain stage at the top closes a true recirculating delay line,
  ``y[n] = x[n] + (y[n-L] * gain) >> 16`` with ``L = layers``.  Every
  stored sample lives in a Dnode OUT register (no Rp state), which is
  what lets the scenario pipelines freeze the echo mid-stream under a
  different configuration plane and resume it bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import word
from repro.compiler.codegen import compile_graph
from repro.compiler.graph import CompileError, DataflowGraph
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.host.system import RingSystem
from repro.kernels.taps import tap_lane0


@dataclass
class EffectResult:
    """Outcome of a fabric effect run."""

    samples: List[int]
    dnodes_used: int
    latency: int


def chorus_graph(depth: int = 6) -> DataflowGraph:
    """Chorus voice: average of the stream with its *depth*-delayed self."""
    if depth < 1:
        raise CompileError(f"depth must be >= 1, got {depth}")
    g = DataflowGraph()
    x = g.input(0)
    tap, remaining = x, depth
    while remaining > 4:
        # A mov rematerialises the delayed stream so the next 4-deep
        # pipeline segment can tap it (the collapsed-delay legality cap).
        tap = g.op("mov", g.delay(tap, 4))
        remaining -= 4
    tap = g.delay(tap, remaining) if remaining else tap
    g.output(g.op("avg2", x, tap))
    return g


def chorus_fabric(signal: Sequence[int], depth: int = 6,
                  ring: Optional[Ring] = None,
                  **compile_kwargs) -> EffectResult:
    """Run the chorus voice on the fabric.

    Bit-exact against :func:`repro.kernels.reference.chorus`.
    """
    graph = chorus_graph(depth)
    program = compile_graph(graph, **compile_kwargs)
    outs = program.run(list(signal), ring=ring)
    return EffectResult(samples=outs[graph.outputs[0]],
                        dnodes_used=program.dnodes_used,
                        latency=program.latency)


def build_echo(gain: int, ring: Optional[Ring] = None, lane: int = 0,
               layers: int = 8, channel: int = 0) -> RingSystem:
    """Configure a recirculating echo down *lane* of *ring*.

    Layer 0 adds the host stream (*channel*) to the fed-back tail read
    through the ring closure; layers ``1..L-2`` are a MOV relay chain;
    layer ``L-1`` applies the Q16 feedback *gain* (MULH immediate).  The
    echo delay equals the ring's layer count, and the wet output
    ``y[n] = x[n] + (y[n-L]*gain >> 16)`` is published at layer 0 with
    zero latency.
    """
    if ring is None:
        ring = Ring(RingGeometry(layers=layers, width=2))
    depth = ring.geometry.layers
    if depth < 3:
        raise ValueError(f"echo needs >= 3 layers, got {depth}")
    if not 0 <= lane < ring.geometry.width:
        raise ValueError(f"lane {lane} outside width "
                         f"{ring.geometry.width}")
    cfg = ring.config
    cfg.write_switch_route(0, lane, 1, PortSource.host(channel))
    cfg.write_switch_route(0, lane, 2, PortSource.up(lane))
    cfg.write_microword(0, lane, MicroWord(
        Opcode.ADD, Source.IN1, Source.IN2, Dest.OUT))
    for layer in range(1, depth - 1):
        cfg.write_switch_route(layer, lane, 1, PortSource.up(lane))
        cfg.write_microword(layer, lane, MicroWord(
            Opcode.MOV, Source.IN1, dst=Dest.OUT))
    cfg.write_switch_route(depth - 1, lane, 1, PortSource.up(lane))
    cfg.write_microword(depth - 1, lane, MicroWord(
        Opcode.MULH, Source.IN1, Source.IMM, Dest.OUT,
        imm=word.from_signed(int(gain))))
    return RingSystem(ring)


def echo_fabric(signal: Sequence[int], gain: int,
                ring: Optional[Ring] = None, lane: int = 0,
                layers: int = 8) -> EffectResult:
    """Run the feedback echo on the fabric (delay = ring layers).

    Bit-exact against :func:`repro.kernels.reference.echo` with
    ``delay = layers``.
    """
    system = build_echo(gain, ring=ring, lane=lane, layers=layers)
    depth = system.ring.geometry.layers
    system.data.stream(0, [word.from_signed(int(v)) for v in signal])
    tap = system.data.add_tap(0, lane, limit=len(signal))
    system.run(len(signal))
    return EffectResult(
        samples=[word.to_signed(v) for v in tap_lane0(tap)],
        dnodes_used=depth, latency=0)
