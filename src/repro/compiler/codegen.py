"""Code generation: a placement -> fabric configuration (+ assembly text).

Each physical node becomes one global-mode microword; operand descriptors
become operand sources and switch routes:

* direct edge          -> ``IN1``/``IN2`` + a switch route ``up(lane)``;
* delayed edge (d)     -> operand source ``Rp(d, lane+1)`` (no route);
* input stream         -> ``IN1``/``IN2`` + a switch route ``host(ch)``;
* constant             -> the ``IMM`` source + the microword immediate.

A :class:`CompiledProgram` can configure any large-enough ring, run a
workload end to end (streams in, taps out, latency-aligned), report its
resource usage, and export itself as two-level assembly text that the
:mod:`repro.asm` toolchain assembles back to the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import word
from repro.asm.microasm import format_dnode_op
from repro.compiler.graph import CompileError, DataflowGraph
from repro.compiler.schedule import Operand, Placement, PhysNode, schedule
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.host.system import RingSystem

Streams = Union[Sequence[int], Dict[int, Sequence[int]]]


#: Dnode execution-mode assignments the code generator can emit.  A
#: one-slot local program loops one microword — bit-identical to global
#: mode — so mode assignment is a *mapping* choice (which engines and
#: reconfiguration styles the placement composes with), not a semantic
#: one.  ``"hybrid"`` keeps operators global and pushes pass-node relays
#: into local loops (the paper's mixed operating point).
MODES = ("global", "local", "hybrid")


@dataclass
class CompiledProgram:
    """A dataflow graph compiled for a ring geometry."""

    graph: DataflowGraph
    placement: Placement
    geometry: RingGeometry
    microwords: Dict[Tuple[int, int], MicroWord]
    routes: Dict[Tuple[int, int, int], PortSource]
    #: Mode assignment emitted by :meth:`configure` (see :data:`MODES`).
    mode: str = "global"
    #: Keyword arguments for the default ring :meth:`build_system`
    #: creates — the autotuner bakes its engine choice (backend,
    #: macro_step, plan_cache) in here so ``program.run()`` executes on
    #: the tuned engine.
    ring_kwargs: Dict[str, object] = field(default_factory=dict)

    @property
    def dnodes_used(self) -> int:
        return len(self.microwords)

    @property
    def latency(self) -> int:
        """Deepest pipeline level = cycles from input to last output."""
        return self.placement.levels

    def local_addrs(self) -> frozenset:
        """The ``(layer, lane)`` addresses emitted in local mode."""
        if self.mode == "local":
            return frozenset(self.microwords)
        if self.mode == "hybrid":
            return frozenset(
                (p.level - 1, p.lane) for p in self.placement.phys
                if p.graph_node is None
            )
        return frozenset()

    def configure(self, ring: Ring) -> None:
        """Write the compiled configuration into *ring*."""
        if ring.geometry.layers < self.geometry.layers or \
                ring.geometry.width < self.geometry.width:
            raise CompileError(
                f"program needs {self.geometry.layers}x"
                f"{self.geometry.width}, ring is "
                f"{ring.geometry.layers}x{ring.geometry.width}"
            )
        local = self.local_addrs()
        for (layer, lane), mw in self.microwords.items():
            if (layer, lane) in local:
                ring.config.write_local_program(layer, lane, [mw])
                ring.config.write_mode(layer, lane, DnodeMode.LOCAL)
            else:
                ring.config.write_microword(layer, lane, mw)
                ring.config.write_mode(layer, lane, DnodeMode.GLOBAL)
        for (switch, pos, port), source in self.routes.items():
            ring.config.write_switch_route(switch, pos, port, source)

    def build_system(self, ring: Optional[Ring] = None) -> RingSystem:
        """A configured, ready-to-stream system."""
        if ring is None:
            ring = Ring(self.geometry, **self.ring_kwargs)
        self.configure(ring)
        return RingSystem(ring)

    def run(self, streams: Streams,
            ring: Optional[Ring] = None) -> Dict[int, List[int]]:
        """Execute on the fabric; returns signed outputs per output node.

        *streams* is a single list (for channel 0) or a dict
        ``channel -> samples``.  Outputs are latency-aligned so they
        compare directly against :meth:`DataflowGraph.evaluate`.
        """
        if not isinstance(streams, dict):
            streams = {0: list(streams)}
        length = max((len(v) for v in streams.values()), default=0)
        system = self.build_system(ring)
        for channel, samples in streams.items():
            system.data.stream(
                channel, [word.from_signed(int(v)) for v in samples])
        taps = {}
        for graph_index, phys_index in self.placement.outputs:
            p = self.placement.phys[phys_index]
            if graph_index not in taps:
                taps[graph_index] = system.data.add_tap(
                    p.level - 1, p.lane, skip=p.level - 1, limit=length)
        system.run(length + self.latency)
        # Lane backends hand out BatchOutputTaps; lane 0 always carries
        # the scalar answer (host streams broadcast across lanes).
        return {
            graph_index: [word.to_signed(v) for v in
                          (tap.lane(0) if hasattr(tap, "lane")
                           else tap.samples)]
            for graph_index, tap in taps.items()
        }

    def to_assembly(self, plane: str = "compiled") -> str:
        """Export as `.ring` assembly accepted by :func:`repro.asm.assemble`."""
        local = self.local_addrs()
        lines = [f".ring {plane}"]
        for (layer, lane) in sorted(self.microwords):
            kind = "local" if (layer, lane) in local else "global"
            lines.append(f"dnode {layer}.{lane} {kind}")
            lines.append("    " + format_dnode_op(
                self.microwords[(layer, lane)]))
        by_switch: Dict[int, List[Tuple[int, int, PortSource]]] = {}
        for (switch, pos, port), source in sorted(self.routes.items()):
            by_switch.setdefault(switch, []).append((pos, port, source))
        for switch in sorted(by_switch):
            lines.append(f"switch {switch}")
            for pos, port, source in by_switch[switch]:
                lines.append(f"    route {pos}.{port} <- {source}")
        return "\n".join(lines) + "\n"

    def resource_report(self) -> str:
        ops = sum(1 for p in self.placement.phys if p.graph_node is not None)
        passes = self.dnodes_used - ops
        return (
            f"{self.dnodes_used} Dnodes "
            f"({ops} operators + {passes} pass nodes) on "
            f"{self.geometry.layers}x{self.geometry.width} layers, "
            f"latency {self.latency} cycles, 1 sample/cycle throughput"
        )


def _operand_source(operand: Operand, phys: List[PhysNode],
                    direct_ports: List[int]) -> Tuple[Source, int]:
    """Resolve one operand to (Source, immediate contribution)."""
    if operand.kind == "const":
        return Source.IMM, operand.value
    if operand.kind == "node" and operand.delay > 0:
        lane = phys[operand.producer].lane
        return Source.rp(operand.delay, lane + 1), 0
    # direct edge or input: allocate IN1 then IN2
    port = len(direct_ports) + 1
    if port > 2:
        raise CompileError(
            "an operator has more than two routed operands"
        )
    direct_ports.append(port)
    return Source.IN1 if port == 1 else Source.IN2, 0


#: Widest fabric the auto-widening default will try before giving up.
_MAX_AUTO_WIDTH = 16


def compile_graph(graph: DataflowGraph,
                  geometry: Optional[RingGeometry] = None,
                  mode: str = "global",
                  lane_order: str = "index",
                  ring_kwargs: Optional[Dict[str, object]] = None,
                  autotune: bool = False,
                  **autotune_opts) -> CompiledProgram:
    """Compile *graph* for *geometry* (default: narrowest ring that fits).

    Args:
        graph: the dataflow graph to compile.
        geometry: target fabric shape; None derives the smallest fit
            (width 2 first, widened until the widest level fits).
        mode: Dnode execution-mode assignment (see :data:`MODES`).
        lane_order: per-level lane order (see
            :data:`repro.compiler.schedule.LANE_ORDERS`).
        ring_kwargs: keyword arguments for the default ring
            ``build_system`` creates (backend, macro_step, ...).
        autotune: search the mapping space instead of emitting the
            hand-shaped default — candidates are scored by measured
            cycles/s and verified bit-identical against
            :meth:`DataflowGraph.evaluate` before one can win; remaining
            keyword arguments go to
            :func:`repro.compiler.autotune.autotune_graph`.

    Raises:
        CompileError: for unmappable graphs (see
            :func:`repro.compiler.schedule.schedule`).
    """
    if autotune:
        from repro.compiler.autotune import autotune_graph
        return autotune_graph(graph, geometry=geometry,
                              **autotune_opts).program
    if autotune_opts:
        raise TypeError(
            f"unexpected arguments {sorted(autotune_opts)} "
            f"(only valid with autotune=True)")
    if mode not in MODES:
        raise CompileError(
            f"unknown mode {mode!r}; expected one of {MODES}")
    if geometry is not None:
        placement = schedule(graph, max_levels=geometry.layers,
                             width=geometry.width, lane_order=lane_order)
    else:
        width, placement = 2, None
        while True:
            try:
                placement = schedule(graph, width=width,
                                     lane_order=lane_order)
                break
            except CompileError as exc:
                # Auto-widen only on width exhaustion; everything else
                # (depth, delay legality) re-raises untouched.
                if "wide" not in str(exc) or width >= _MAX_AUTO_WIDTH:
                    raise
                width += 1
        geometry = RingGeometry(layers=max(placement.levels, 2),
                                width=width)

    microwords: Dict[Tuple[int, int], MicroWord] = {}
    routes: Dict[Tuple[int, int, int], PortSource] = {}
    for p in placement.phys:
        layer = p.level - 1
        direct_ports: List[int] = []
        sources: List[Source] = []
        imm = 0
        for operand in p.operands:
            source, imm_value = _operand_source(operand, placement.phys,
                                                direct_ports)
            sources.append(source)
            if source is Source.IMM:
                imm = imm_value
            elif source in (Source.IN1, Source.IN2):
                port = 1 if source is Source.IN1 else 2
                if operand.kind == "input":
                    routes[(layer, p.lane, port)] = \
                        PortSource.host(operand.channel)
                else:
                    routes[(layer, p.lane, port)] = \
                        PortSource.up(placement.phys[operand.producer].lane)
        src_a = sources[0] if sources else Source.ZERO
        src_b = sources[1] if len(sources) > 1 else Source.ZERO
        microwords[(layer, p.lane)] = MicroWord(
            op=p.op, src_a=src_a, src_b=src_b, dst=Dest.OUT, imm=imm)
    return CompiledProgram(graph=graph, placement=placement,
                           geometry=geometry, microwords=microwords,
                           routes=routes, mode=mode,
                           ring_kwargs=dict(ring_kwargs or {}))
