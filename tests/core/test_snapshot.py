"""Tests for fabric checkpoint/restore."""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry, make_ring
from repro.core.snapshot import capture, restore
from repro.core.switch import PortSource
from repro.errors import SimulationError


def busy_ring():
    """A ring with every kind of live state: registers, OUT values,
    pipeline contents, FIFO backlogs, a mid-loop local counter."""
    ring = make_ring(8)
    cfg = ring.config
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    cfg.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=3))
    cfg.write_local_program(1, 0, [
        MicroWord(Opcode.MAC, Source.FIFO1, Source.FIFO2, Dest.R0,
                  flags=Flag.POP_FIFO1 | Flag.POP_FIFO2),
        MicroWord(Opcode.MOV, Source.R0, dst=Dest.OUT),
        MicroWord(Opcode.NOP),
    ])
    cfg.write_mode(1, 0, DnodeMode.LOCAL)
    cfg.write_switch_route(2, 0, 1, PortSource.rp(2, 1))
    cfg.write_microword(2, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    ring.push_fifo(1, 0, 1, [2, 3, 4, 5, 6, 7, 8])
    ring.push_fifo(1, 0, 2, [10, 10, 10, 10, 10, 10, 10])
    ring.run(5, host_in=lambda ch: 1)
    return ring


def fabric_state(ring):
    return {
        "outs": [dn.out for dn in ring.all_dnodes()],
        "regs": [dn.regs.snapshot() for dn in ring.all_dnodes()],
        "counters": [dn.local.counter for dn in ring.all_dnodes()],
        "pipes": [[ring.switch(k).rp_read(s, l)
                   for s in range(1, 5) for l in (1, 2)]
                  for k in range(4)],
        "fifos": [list(ring.fifo(1, 0, ch)) for ch in (1, 2)],
        "cycles": ring.cycles,
    }


class TestCaptureRestore:
    def test_state_restored_exactly(self):
        source = busy_ring()
        snapshot = capture(source)
        target = make_ring(8)
        restore(target, snapshot)
        assert fabric_state(target) == fabric_state(source)

    def test_restored_ring_continues_identically(self):
        """The acid test: run the original and the restored ring forward
        and require cycle-for-cycle identical evolution."""
        source = busy_ring()
        snapshot = capture(source)
        target = make_ring(8)
        restore(target, snapshot)
        for _ in range(6):
            source.step(host_in=lambda ch: 1)
            target.step(host_in=lambda ch: 1)
            assert fabric_state(target) == fabric_state(source)

    def test_snapshot_is_independent_of_source(self):
        source = busy_ring()
        snapshot = capture(source)
        cycles_at_capture = snapshot.cycles
        source.run(3, host_in=lambda ch: 1)
        assert snapshot.cycles == cycles_at_capture

    def test_geometry_mismatch_rejected(self):
        snapshot = capture(busy_ring())
        with pytest.raises(SimulationError, match="snapshot"):
            restore(make_ring(16), snapshot)

    def test_mid_loop_local_counter_preserved(self):
        source = busy_ring()  # period-3 local loop after 5 cycles
        assert source.dnode(1, 0).local.counter == 5 % 3
        target = make_ring(8)
        restore(target, capture(source))
        assert target.dnode(1, 0).local.counter == 5 % 3

    def test_restore_over_dirty_ring(self):
        """Restoring discards whatever the target was doing."""
        source = busy_ring()
        snapshot = capture(source)
        target = busy_ring()
        target.run(7, host_in=lambda ch: 2)
        restore(target, snapshot)
        assert fabric_state(target) == fabric_state(source)
