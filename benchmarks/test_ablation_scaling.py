"""Ablation A3 — the "highly scalable" claim, quantified.

Sweeps Ring-8 ... Ring-256 and checks the three properties the paper's
architecture is designed around:

* silicon area grows linearly with Dnode count while the *overhead*
  fraction (controller + configuration + switches) shrinks;
* the achievable clock is flat for the ring but degrades for mesh and
  crossbar fabrics of the same compute (the §4.2 routing argument);
* peak compute (MIPS) and direct-port bandwidth scale linearly.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, ring_peak_mips
from repro.analysis.mips import theoretical_bandwidth_bytes_per_s
from repro.core.ring import RingGeometry
from repro.tech.area import core_area_mm2
from repro.tech.timing import (
    crossbar_frequency_hz,
    estimated_frequency_hz,
    mesh_frequency_hz,
)

SWEEP = (8, 16, 32, 64, 128, 256)


def _sweep_rows():
    rows = []
    for dnodes in SWEEP:
        report = core_area_mm2(RingGeometry.ring(dnodes), "0.18um")
        rows.append({
            "dnodes": dnodes,
            "area": report.total_mm2,
            "overhead": report.overhead_fraction,
            "mips": ring_peak_mips(dnodes),
            "bw": theoretical_bandwidth_bytes_per_s(dnodes) / 1e9,
            "ring_mhz": estimated_frequency_hz("0.18um", dnodes) / 1e6,
            "mesh_mhz": mesh_frequency_hz("0.18um", dnodes) / 1e6,
            "xbar_mhz": crossbar_frequency_hz("0.18um", dnodes) / 1e6,
        })
    return rows


def test_ablation_sweep_evaluation(benchmark):
    rows = benchmark(_sweep_rows)
    assert len(rows) == len(SWEEP)


def test_ablation_scaling_shape():
    rows = _sweep_rows()
    emit(render_table(
        ["Ring-N", "area mm^2", "overhead %", "GMIPS", "GB/s",
         "ring MHz", "mesh MHz", "xbar MHz"],
        [[r["dnodes"], r["area"], 100 * r["overhead"], r["mips"] / 1000,
          r["bw"], r["ring_mhz"], r["mesh_mhz"], r["xbar_mhz"]]
         for r in rows],
        title="A3 (ablation) — scaling sweep at 0.18 um"))

    # Area: linear in N (constant marginal cost within 5 %).
    marginals = [
        (rows[i + 1]["area"] - rows[i]["area"])
        / (rows[i + 1]["dnodes"] - rows[i]["dnodes"])
        for i in range(len(rows) - 1)
    ]
    assert max(marginals) / min(marginals) < 1.05

    # Overhead fraction strictly shrinks.
    overheads = [r["overhead"] for r in rows]
    assert overheads == sorted(overheads, reverse=True)

    # Compute and bandwidth: exactly linear.
    for r in rows:
        assert r["mips"] == 200 * r["dnodes"]
        assert r["bw"] == pytest.approx(0.4 * r["dnodes"], rel=1e-6)

    # Frequency: ring flat, rivals degrade monotonically.
    ring_f = {r["ring_mhz"] for r in rows}
    assert len(ring_f) == 1
    mesh_f = [r["mesh_mhz"] for r in rows]
    xbar_f = [r["xbar_mhz"] for r in rows]
    assert mesh_f == sorted(mesh_f, reverse=True)
    assert xbar_f == sorted(xbar_f, reverse=True)
    assert xbar_f[-1] < mesh_f[-1] < rows[0]["ring_mhz"]

    # At 256 Dnodes the crossbar has lost >70 % of the clock; the ring
    # none — the quantified version of "limit the scalability".
    assert xbar_f[-1] / rows[0]["ring_mhz"] < 0.3
