"""Raw computing power and bandwidth arithmetic of §5.1.

The paper's headline comparative numbers for the Ring-8 at 200 MHz:

* "a maximal computing power of 1600 MIPS" — one microinstruction per
  Dnode per cycle: ``8 x 200 MHz = 1600 MIPS`` (and up to 3200 MOPS
  counting the dual arithmetic operators);
* "quite impressive compared to the 400 MIPS of a Pentium II 450 MHz";
* "theoretical maximum bandwidth ... about 3 Gbytes/s, limited to
  250 Mbytes/s in our implemented communication protocol".

Sustained figures come from the simulator's activity counters, so
utilisation-honest MIPS can be reported for any real kernel run.
"""

from __future__ import annotations

from typing import Dict

from repro.core.ring import Ring
from repro.errors import SimulationError
from repro.host.dma import BYTES_PER_WORD, DEFAULT_CLOCK_HZ, PCI_BUS
from repro.baselines.scalar_cpu import PENTIUM_II_450, ScalarCpu


def ring_peak_mips(dnodes: int, frequency_hz: float = DEFAULT_CLOCK_HZ,
                   ) -> float:
    """Peak MIPS: one microinstruction per Dnode per cycle."""
    _check(dnodes, frequency_hz)
    return dnodes * frequency_hz / 1e6


def ring_peak_mops(dnodes: int, frequency_hz: float = DEFAULT_CLOCK_HZ,
                   ) -> float:
    """Peak arithmetic operations/s: the ALU and multiplier can chain,
    so each Dnode retires up to two elementary operations per cycle."""
    return 2.0 * ring_peak_mips(dnodes, frequency_hz)


def measured_mips(ring: Ring, frequency_hz: float = DEFAULT_CLOCK_HZ,
                  ) -> float:
    """Sustained MIPS of a finished run, from the activity counters."""
    if ring.cycles == 0:
        raise SimulationError("ring has not run yet")
    per_cycle = ring.instructions_executed / ring.cycles
    return per_cycle * frequency_hz / 1e6


def measured_mops(ring: Ring, frequency_hz: float = DEFAULT_CLOCK_HZ,
                  ) -> float:
    """Sustained elementary-operation rate (MAC counts as 2)."""
    if ring.cycles == 0:
        raise SimulationError("ring has not run yet")
    per_cycle = ring.arithmetic_ops_executed / ring.cycles
    return per_cycle * frequency_hz / 1e6


def theoretical_bandwidth_bytes_per_s(
        ports: int, frequency_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Direct-port bandwidth ceiling: 16 bits per port per cycle."""
    _check(ports, frequency_hz)
    return ports * BYTES_PER_WORD * frequency_hz


def comparative_summary(dnodes: int = 8,
                        frequency_hz: float = DEFAULT_CLOCK_HZ,
                        cpu: ScalarCpu = PENTIUM_II_450) -> Dict[str, float]:
    """All §5.1 numbers in one dict (used by the S51 benchmark)."""
    return {
        "ring_peak_mips": ring_peak_mips(dnodes, frequency_hz),
        "ring_peak_mops": ring_peak_mops(dnodes, frequency_hz),
        "cpu_mips": cpu.sustained_mips,
        "speedup_vs_cpu": ring_peak_mips(dnodes, frequency_hz)
        / cpu.sustained_mips,
        "theoretical_bw_gb_s": theoretical_bandwidth_bytes_per_s(
            dnodes, frequency_hz) / 1e9,
        "pci_bw_gb_s": PCI_BUS.bandwidth_bytes_per_s / 1e9,
    }


def _check(count: int, frequency_hz: float) -> None:
    if count < 1:
        raise SimulationError(f"count must be >= 1, got {count}")
    if frequency_hz <= 0:
        raise SimulationError(
            f"frequency must be positive, got {frequency_hz}"
        )
