"""Cross-engine x kernel conformance matrix.

Every golden recipe in :mod:`repro.kernels` runs against every execution
engine (see ``ENGINES`` in ``conftest.py``) and every cell must be
bit-identical to the NumPy/golden reference — *and* leave the fabric in
exactly the architectural state the reference interpreter leaves it in.
A new engine earns its place by going green down its whole column; a new
kernel by going green across its whole row.

Each cell drives the recipe through the shared ``engine`` fixture; the
host plumbing is lane-aware (``tap_samples``), so the same cell covers
scalar engines and both lane backends (where a scalar stream/FIFO push
broadcasts, making every lane compute the same answer as the golden
model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import word
from repro.compiler.codegen import compile_graph
from repro.core.ring import RingGeometry
from repro.host.system import RingSystem
from repro.kernels import reference
from repro.kernels.complex_ops import cmag_graph, cmul4_graph
from repro.kernels.cordic import rotation_graph, vectoring_graph
from repro.kernels.dct import build_dct_system, dct8_reference
from repro.kernels.effects import chorus_fabric, chorus_graph, echo_fabric
from repro.kernels.mixer import mixer_graph, vca_graph
from repro.kernels.nco import NCO_LAYERS, nco_fabric
from repro.kernels.resampler import RESAMPLERS
from repro.kernels.ringmac import ringmac_fabric
from repro.kernels.fifo_emulation import build_delay_line, plan_delay
from repro.kernels.fir import build_spatial_fir
from repro.kernels.iir import build_first_order_iir
from repro.kernels.matrix import build_matvec_system, matvec_reference
from repro.kernels.motion_estimation import full_search_me
from repro.kernels.wavelet import (APPROX_LATENCY, BORDER_PREFIX_PAIRS,
                                   DETAIL_LATENCY, _border_streams,
                                   build_lifting_system)

from tests.kernels.conftest import fabric_state, make_ring, tap_samples

INTERPRETER = {"fastpath": False}


def _signal(length: int, spread: int = 60, stride: int = 7):
    """Deterministic signed test signal."""
    return [((stride * i + 11) % (2 * spread)) - spread
            for i in range(length)]


def _matrix_cell(drive, engine):
    """One conformance cell: run *drive* on the engine and on the
    reference interpreter, assert identical outputs and fabric state."""
    name, kwargs = engine
    got, ring = drive(kwargs)
    want, twin = drive(dict(INTERPRETER))
    assert got == want, f"{name} outputs diverged from interpreter"
    assert fabric_state(ring) == fabric_state(twin), (
        f"{name} architectural state diverged from interpreter"
    )
    return got


class TestFirConformance:
    TAPS = [3, -1, 4, 2]
    LENGTH = 24

    def _drive(self, engine_kwargs):
        n_taps = len(self.TAPS)
        ring = make_ring(RingGeometry(layers=n_taps, width=2),
                         engine_kwargs)
        build_spatial_fir(self.TAPS, ring=ring)
        system = RingSystem(ring)
        signal = _signal(self.LENGTH)
        system.data.stream(0, [word.from_signed(v) for v in signal])
        tap = system.data.add_tap(n_taps - 1, 1, skip=n_taps - 1,
                                  limit=self.LENGTH)
        system.run(self.LENGTH + n_taps)
        return [word.to_signed(v) for v in tap_samples(tap)], ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        assert got == reference.fir(_signal(self.LENGTH), self.TAPS)


class TestIirConformance:
    B0, A1 = 3, -1
    LENGTH = 20

    def _drive(self, engine_kwargs):
        ring = make_ring(RingGeometry(layers=2, width=2), engine_kwargs)
        build_first_order_iir(self.B0, self.A1, ring=ring)
        system = RingSystem(ring)
        signal = _signal(self.LENGTH, spread=25)
        system.data.stream(0, [word.from_signed(v) for v in signal])
        tap = system.data.add_tap(1, 0, skip=1, limit=self.LENGTH)
        system.run(self.LENGTH + 2)
        return [word.to_signed(v) for v in tap_samples(tap)], ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        assert got == reference.iir_first_order(
            _signal(self.LENGTH, spread=25), self.B0, self.A1)


class TestDctConformance:
    GROUPS = 3

    def _drive(self, engine_kwargs):
        ring = make_ring(RingGeometry.ring(16), engine_kwargs)
        system = build_dct_system(ring)
        signal = _signal(8 * self.GROUPS, spread=300)
        raw = [word.from_signed(v) for v in signal]
        taps = []
        for k in range(8):
            ring.push_fifo(k, 0, 1, raw)
            taps.append(system.data.add_tap(k, 0, skip=7, every=8,
                                            limit=self.GROUPS))
        system.run(8 * self.GROUPS)
        coeffs = [[word.to_signed(tap_samples(taps[k])[g])
                   for k in range(8)] for g in range(self.GROUPS)]
        return coeffs, ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        signal = _signal(8 * self.GROUPS, spread=300)
        for g in range(self.GROUPS):
            assert got[g] == dct8_reference(signal[8 * g:8 * g + 8])


class TestWaveletConformance:
    LENGTH = 16

    def _drive(self, engine_kwargs):
        ring = make_ring(RingGeometry.ring(16, width=2), engine_kwargs)
        system = build_lifting_system(ring)
        signal = _signal(self.LENGTH, spread=200)
        even_stream, odd_stream = _border_streams(signal)
        half = self.LENGTH // 2
        system.data.stream(0, [word.from_signed(v) for v in even_stream])
        ring.push_fifo(2, 0, 2,
                       [0] * 3 + [word.from_signed(v)
                                  for v in odd_stream])
        detail = system.data.add_tap(
            2, 0, skip=DETAIL_LATENCY - 1 + BORDER_PREFIX_PAIRS,
            limit=half)
        approx = system.data.add_tap(
            6, 0, skip=APPROX_LATENCY - 1 + BORDER_PREFIX_PAIRS,
            limit=half)
        system.run(len(even_stream) + APPROX_LATENCY)
        result = ([word.to_signed(v) for v in tap_samples(approx)],
                  [word.to_signed(v) for v in tap_samples(detail)])
        return result, ring

    def test_matches_reference(self, engine):
        approx, detail = _matrix_cell(self._drive, engine)
        want_a, want_d = reference.lifting53_forward(
            _signal(self.LENGTH, spread=200))
        assert approx == want_a
        assert detail == want_d


class TestMatrixConformance:
    MATRIX = np.array([[1, -2, 3, 4], [5, 6, -7, 8], [9, 1, 2, -3]])
    VECTORS = [[1, 2, 3, 4], [-5, 6, 7, -8], [9, -10, 11, 12]]

    def _drive(self, engine_kwargs):
        rows, cols = self.MATRIX.shape
        ring = make_ring(RingGeometry(layers=rows, width=2),
                         engine_kwargs)
        system = build_matvec_system(self.MATRIX, ring)
        stream = [word.from_signed(int(x))
                  for v in self.VECTORS for x in v]
        taps = []
        for k in range(rows):
            ring.push_fifo(k, 0, 1, stream)
            taps.append(system.data.add_tap(k, 0, skip=cols - 1,
                                            every=cols,
                                            limit=len(self.VECTORS)))
        system.run(len(self.VECTORS) * cols)
        products = [[word.to_signed(tap_samples(taps[k])[i])
                     for k in range(rows)]
                    for i in range(len(self.VECTORS))]
        return products, ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        for i, v in enumerate(self.VECTORS):
            assert got[i] == matvec_reference(self.MATRIX, v)


class TestMotionEstimationConformance:
    """Full-search SAD matching, controller-driven (hybrid reconfig)."""

    BLOCK = np.arange(16).reshape(4, 4) % 11 * 9 % 256
    AREA = (np.arange(36).reshape(6, 6) * 7 + 3) % 256

    def test_matches_reference(self, engine):
        name, kwargs = engine
        result = full_search_me(self.BLOCK, self.AREA, dnodes=8,
                                ring_kwargs=kwargs)
        want_best, want_sad, want_map = reference.full_search(
            self.BLOCK, self.AREA)
        assert np.array_equal(result.sad_map, want_map), (
            f"{name} SAD map diverged from golden full search"
        )
        assert result.best == want_best
        assert result.best_sad == want_sad


class TestFifoEmulationConformance:
    DEPTH = 9
    LENGTH = 18

    def _drive(self, engine_kwargs):
        plan = plan_delay(self.DEPTH)
        ring = make_ring(
            RingGeometry(layers=max(plan.dnodes_used, 2), width=2),
            engine_kwargs)
        system = build_delay_line(self.DEPTH, ring)
        signal = _signal(self.LENGTH)
        system.data.stream(0, [word.from_signed(v) for v in signal])
        tap = system.data.add_tap(plan.dnodes_used - 1, 0,
                                  limit=self.LENGTH)
        system.run(self.LENGTH)
        return [word.to_signed(v) for v in tap_samples(tap)], ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        signal = _signal(self.LENGTH)
        assert got == [0] * self.DEPTH + signal[:self.LENGTH - self.DEPTH]


# -- scenario-library rows ---------------------------------------------

def _compiled_drive(graph, streams, engine_kwargs):
    """Drive a compiled graph on a ring of the engine under test."""
    program = compile_graph(graph)
    ring = make_ring(program.geometry, engine_kwargs)
    outs = program.run(streams, ring=ring)
    return [outs[node] for node in graph.outputs], ring


class TestCordicRotateConformance:
    ITERATIONS = 4
    LENGTH = 12

    def _streams(self):
        return {0: _signal(self.LENGTH, spread=9000, stride=997),
                1: _signal(self.LENGTH, spread=9000, stride=641),
                2: _signal(self.LENGTH, spread=8192, stride=1303)}

    def _drive(self, engine_kwargs):
        return _compiled_drive(rotation_graph(self.ITERATIONS),
                               self._streams(), engine_kwargs)

    def test_matches_reference(self, engine):
        xo, yo, zo = _matrix_cell(self._drive, engine)
        s = self._streams()
        want = [reference.cordic_rotate(x, y, z, self.ITERATIONS)
                for x, y, z in zip(s[0], s[1], s[2])]
        assert (xo, yo, zo) == tuple(map(list, zip(*want)))


class TestCordicVectorConformance:
    ITERATIONS = 4
    LENGTH = 12

    def _streams(self):
        return {0: _signal(self.LENGTH, spread=9000, stride=733),
                1: _signal(self.LENGTH, spread=9000, stride=389),
                2: [0] * self.LENGTH}

    def _drive(self, engine_kwargs):
        return _compiled_drive(vectoring_graph(self.ITERATIONS),
                               self._streams(), engine_kwargs)

    def test_matches_reference(self, engine):
        xo, yo, zo = _matrix_cell(self._drive, engine)
        s = self._streams()
        want = [reference.cordic_vector(x, y, z, self.ITERATIONS)
                for x, y, z in zip(s[0], s[1], s[2])]
        assert (xo, yo, zo) == tuple(map(list, zip(*want)))


class TestNcoConformance:
    """Hand-mapped phase accumulator + shaper (SELF recurrence)."""

    FCW = 1873
    LENGTH = 24

    def _drive(self, engine_kwargs):
        ring = make_ring(RingGeometry(layers=NCO_LAYERS, width=2),
                         engine_kwargs)
        result = nco_fabric(self.FCW, self.LENGTH, ring=ring)
        return result.samples, ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        assert got == reference.nco(self.FCW, self.LENGTH)


class TestResamplerConformance:
    LENGTH = 20

    REFERENCES = {
        "up2": reference.upsample2,
        "down2": reference.downsample2,
        "up3": reference.upsample3,
        "down3": reference.downsample3,
    }

    def _drive(self, factor, engine_kwargs):
        builder, fabric = RESAMPLERS[factor]
        program = compile_graph(builder())
        ring = make_ring(program.geometry, engine_kwargs)
        result = fabric(_signal(self.LENGTH), ring=ring)
        return result.samples, ring

    @pytest.mark.parametrize("factor", sorted(RESAMPLERS))
    def test_matches_reference(self, factor, engine):
        got = _matrix_cell(
            lambda kwargs: self._drive(factor, kwargs), engine)
        assert got == self.REFERENCES[factor](_signal(self.LENGTH))


class TestVcaConformance:
    LENGTH = 20

    def _streams(self):
        return {0: _signal(self.LENGTH, spread=2000, stride=577),
                1: [(1000 * i) % 32768 for i in range(self.LENGTH)]}

    def _drive(self, engine_kwargs):
        return _compiled_drive(vca_graph(), self._streams(),
                               engine_kwargs)

    def test_matches_reference(self, engine):
        (got,) = _matrix_cell(self._drive, engine)
        s = self._streams()
        assert got == reference.vca(s[0], s[1])


class TestMixerConformance:
    GAINS = (20000, 16000, 12000, 24000)
    LENGTH = 16

    def _streams(self):
        return {i: _signal(self.LENGTH, spread=1500, stride=7 + 4 * i)
                for i in range(len(self.GAINS))}

    def _drive(self, engine_kwargs):
        return _compiled_drive(mixer_graph(self.GAINS), self._streams(),
                               engine_kwargs)

    def test_matches_reference(self, engine):
        (got,) = _matrix_cell(self._drive, engine)
        s = self._streams()
        assert got == reference.mix([s[i] for i in range(len(s))],
                                    self.GAINS)


class TestChorusConformance:
    DEPTH = 6
    LENGTH = 20

    def _drive(self, engine_kwargs):
        graph = chorus_graph(self.DEPTH)
        program = compile_graph(graph)
        ring = make_ring(program.geometry, engine_kwargs)
        result = chorus_fabric(_signal(self.LENGTH), self.DEPTH,
                               ring=ring)
        return result.samples, ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        assert got == reference.chorus(_signal(self.LENGTH), self.DEPTH)


class TestEchoConformance:
    """Feedback through the ring closure (hand-mapped, stateful)."""

    LAYERS = 6
    GAIN = 22000
    LENGTH = 24

    def _drive(self, engine_kwargs):
        ring = make_ring(RingGeometry(layers=self.LAYERS, width=2),
                         engine_kwargs)
        result = echo_fabric(_signal(self.LENGTH, spread=4000), self.GAIN,
                             ring=ring)
        return result.samples, ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        assert got == reference.echo(_signal(self.LENGTH, spread=4000),
                                     self.LAYERS, self.GAIN)


class TestComplexConformance:
    LENGTH = 16

    def _streams(self):
        return [_signal(self.LENGTH, spread=s, stride=k)
                for s, k in ((121, 7), (144, 11), (99, 13), (130, 17))]

    def _drive_cmul(self, engine_kwargs):
        a, b, c, d = self._streams()
        return _compiled_drive(cmul4_graph(),
                               {0: a, 1: b, 2: c, 3: d}, engine_kwargs)

    def _drive_cmag(self, engine_kwargs):
        a, b, _, _ = self._streams()
        return _compiled_drive(cmag_graph(), {0: a, 1: b}, engine_kwargs)

    def test_cmul_matches_reference(self, engine):
        re, im = _matrix_cell(self._drive_cmul, engine)
        a, b, c, d = self._streams()
        want_re, want_im = reference.complex_multiply(a, b, c, d)
        assert re == want_re
        assert im == want_im

    def test_cmag_matches_reference(self, engine):
        (mag,) = _matrix_cell(self._drive_cmag, engine)
        a, b, _, _ = self._streams()
        assert mag == reference.complex_magnitude(a, b)


class TestRingMacConformance:
    """One MAC Dnode time-multiplexed across client dot products."""

    CLIENTS = 3
    LENGTH = 8

    def _streams(self):
        a = [_signal(self.LENGTH, spread=40, stride=5 + c)
             for c in range(self.CLIENTS)]
        b = [_signal(self.LENGTH, spread=30, stride=3 + 2 * c)
             for c in range(self.CLIENTS)]
        return a, b

    def _drive(self, engine_kwargs):
        ring = make_ring(RingGeometry(layers=2, width=2), engine_kwargs)
        a, b = self._streams()
        result = ringmac_fabric(a, b, ring=ring)
        return result.partials, ring

    def test_matches_reference(self, engine):
        got = _matrix_cell(self._drive, engine)
        a, b = self._streams()
        assert got == reference.ringmac(a, b)
