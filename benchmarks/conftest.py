"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4 for the index).  Each test both:

* drives the real simulators/models under ``pytest-benchmark`` timing, and
* asserts the *shape* of the paper's result (who wins, by what factor,
  where the crossovers sit) and prints the reproduced table.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2002)  # DATE 2002


@pytest.fixture
def me_workload(rng):
    """The Table 1 workload: 8x8 block, +/-8 displacement search area."""
    reference_block = rng.integers(0, 256, (8, 8))
    search_area = rng.integers(0, 256, (24, 24))
    return reference_block, search_area


def emit(text: str) -> None:
    """Print a reproduced table so `pytest -s benchmarks/` shows it."""
    print("\n" + text)
