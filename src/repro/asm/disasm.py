"""Disassembler: object code back to readable two-level listings.

The inverse of the assembler, for debugging loadable images: renders the
controller program with resolved labels and the configuration planes
with decoded microinstructions and routes.  The `.ring` part of a
disassembly is itself valid assembler input; the controller listing is
annotated (addresses, symbols) and meant for humans.
"""

from __future__ import annotations

from typing import Dict, List

from repro.asm.microasm import format_dnode_op, format_route
from repro.asm.objcode import ObjectCode, PlaneSpec
from repro.controller.isa import FORMATS, Instruction, ROp, decode_program
from repro.core.isa import decode as decode_microword
from repro.core.switch import decode_route

_BRANCH_OPS = frozenset({ROp.BEQ, ROp.BNE, ROp.BLT, ROp.BGE, ROp.BFE})
_JUMP_OPS = frozenset({ROp.JMP, ROp.JAL})


def _format_instruction(instr: Instruction, address: int,
                        labels: Dict[int, str],
                        obj: ObjectCode) -> str:
    op = instr.op
    name = op.name.lower()
    if op in (ROp.NOP, ROp.HALT):
        return name
    if op is ROp.LDI:
        return f"ldi r{instr.rd}, {instr.imm}"
    if op is ROp.MOV:
        return f"mov r{instr.rd}, r{instr.rs}"
    if op in (ROp.ADD, ROp.SUB, ROp.AND, ROp.OR, ROp.XOR, ROp.SHL,
              ROp.SHR, ROp.SAR, ROp.MUL):
        return f"{name} r{instr.rd}, r{instr.rs}, r{instr.rt}"
    if op is ROp.ADDI:
        return f"addi r{instr.rd}, r{instr.rs}, {instr.imm}"
    if op in (ROp.BEQ, ROp.BNE, ROp.BLT, ROp.BGE):
        target = address + 1 + instr.imm
        return (f"{name} r{instr.rs}, r{instr.rt}, "
                f"{labels.get(target, target)}")
    if op in _JUMP_OPS:
        return f"{name} {labels.get(instr.imm, instr.imm)}"
    if op is ROp.JR:
        return f"jr r{instr.rs}"
    if op is ROp.LW:
        return f"lw r{instr.rd}, r{instr.rs}, {instr.imm}"
    if op is ROp.SW:
        return f"sw r{instr.rt}, r{instr.rs}, {instr.imm}"
    if op is ROp.CFGDI:
        layer, pos = divmod(instr.dnode, obj.width)
        text = format_dnode_op(decode_microword(obj.cfg_rom[instr.cfg]))
        return f"cfgdi d{layer}.{pos}, [{text}]"
    if op is ROp.CFGD:
        return f"cfgd r{instr.rs}, r{instr.rt}"
    if op is ROp.CFGL:
        layer, pos = divmod(instr.dnode, obj.width)
        text = format_dnode_op(decode_microword(obj.cfg_rom[instr.cfg]))
        return f"cfgl d{layer}.{pos}, {instr.slot}, [{text}]"
    if op is ROp.CFGLIM:
        layer, pos = divmod(instr.dnode, obj.width)
        return f"cfglim d{layer}.{pos}, {instr.limit}"
    if op is ROp.CFGMODE:
        layer, pos = divmod(instr.dnode, obj.width)
        mode = "local" if instr.mode else "global"
        return f"cfgmode d{layer}.{pos}, {mode}"
    if op is ROp.CFGS:
        route = format_route(decode_route(obj.cfg_rom[instr.cfg]))
        return (f"cfgs s{instr.sw}.{instr.pos}.{instr.port}, [{route}]")
    if op is ROp.CFGIMM:
        layer, pos = divmod(instr.dnode, obj.width)
        text = format_dnode_op(decode_microword(obj.cfg_rom[instr.cfg]))
        return f"cfgimm d{layer}.{pos}, [{text}], r{instr.rs}"
    if op is ROp.RDD:
        layer, pos = divmod(instr.dnode, obj.width)
        return f"rdd r{instr.rd}, d{layer}.{pos}"
    if op is ROp.CFGPLANE:
        if 0 <= instr.plane < len(obj.planes):
            return f"cfgplane {obj.planes[instr.plane].name}"
        return f"cfgplane {instr.plane}"
    if op is ROp.BUSW:
        return f"busw r{instr.rs}"
    if op is ROp.INW:
        return f"inw r{instr.rd}, {instr.ch}"
    if op is ROp.OUTW:
        return f"outw {instr.ch}, r{instr.rs}"
    if op is ROp.WAITI:
        return f"waiti {instr.imm}"
    if op is ROp.BFE:
        target = address + 1 + instr.imm
        return f"bfe {instr.ch}, {labels.get(target, target)}"
    # fall back to the generic field dump
    fields = ", ".join(f"{n}={getattr(instr, n)}" for n, _, _ in FORMATS[op])
    return f"{name} {fields}"


def disassemble_plane(obj: ObjectCode, plane: PlaneSpec) -> str:
    """Render one configuration plane as (valid) `.ring` assembly."""
    lines = [f".ring {plane.name}"]
    modes = dict(plane.modes)
    slots_by_dnode: Dict[int, Dict[int, int]] = {}
    for dnode, slot, rom in plane.local_slots:
        slots_by_dnode.setdefault(dnode, {})[slot] = rom
    limits = dict(plane.local_limits)

    for dnode, rom in sorted(plane.dnode_words):
        layer, pos = divmod(dnode, obj.width)
        lines.append(f"dnode {layer}.{pos} global")
        lines.append("    " + format_dnode_op(
            decode_microword(obj.cfg_rom[rom])))
    for dnode in sorted(slots_by_dnode):
        layer, pos = divmod(dnode, obj.width)
        lines.append(f"dnode {layer}.{pos} local")
        limit = limits.get(dnode, max(slots_by_dnode[dnode]) + 1)
        for slot in range(limit):
            rom = slots_by_dnode[dnode].get(slot)
            text = format_dnode_op(decode_microword(obj.cfg_rom[rom])) \
                if rom is not None else "nop"
            lines.append("    " + text)

    by_switch: Dict[int, List] = {}
    for sw, pos, port, rom in plane.routes:
        by_switch.setdefault(sw, []).append((pos, port, rom))
    for sw in sorted(by_switch):
        lines.append(f"switch {sw}")
        for pos, port, rom in sorted(by_switch[sw]):
            route = format_route(decode_route(obj.cfg_rom[rom]))
            lines.append(f"    route {pos}.{port} <- {route}")
    return "\n".join(lines)


def disassemble(obj: ObjectCode) -> str:
    """Full listing: every plane plus the annotated controller program."""
    sections = [
        f"; object code for a {obj.layers}x{obj.width} ring "
        f"({len(obj.cfg_rom)} ROM entries)"
    ]
    for plane in obj.planes:
        sections.append(disassemble_plane(obj, plane))
    if obj.program:
        labels = {addr: name for name, addr in obj.symbols.items()}
        lines = [".risc"]
        for address, instr in enumerate(decode_program(obj.program)):
            label = f"{labels[address]}:" if address in labels else ""
            text = _format_instruction(instr, address, labels, obj)
            lines.append(f"{label:<10}{text:<40}; {address:04x}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"
