"""Full-search block-matching motion estimation on the Systolic Ring.

Reproduces the Table 1 experiment: matching an 8x8 reference block
against a +/-8-pixel search area (17 x 17 = 289 candidate positions,
H.261-style).

Mapping (Ring-16, all 16 Dnodes, *hybrid* multi-level reconfiguration —
the paper's showcase):

* every Dnode runs a two-slot **local-mode** loop computing one
  candidate's SAD: ``absdiff r1, fifo1, fifo2 [pop1,pop2]`` then
  ``add r0, r0, r1`` — 2 cycles per pixel pair, 128 cycles per 8x8
  candidate, with the pixel pairs pre-staged in its stream FIFOs
  (the search window lives on-chip, as in the ASIC comparators);
* candidates are dealt round-robin: Dnode *i* handles candidates
  ``i, i+16, i+32, ...`` so a batch of 16 SADs completes every 128
  cycles;
* the **configuration controller** harvests each batch by flipping
  whole configuration planes (``CFGPLANE``): one *flush* cycle (all
  Dnodes momentarily global: ``mov out, r0``), one *reset* cycle
  (``mov r0, zero``), then back to the *compute* plane (local mode) —
  exactly the per-cycle hardware multiplexing of §3.

The host reads the flushed SADs from output taps and picks the minimum;
the fabric cycle count is what Table 1 compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import word
from repro.controller.core import RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.config_memory import ConfigPlane
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.errors import SimulationError
from repro.host.system import RingSystem

#: Local-mode SAD loop: two cycles per pixel pair.
CYCLES_PER_PAIR = 2
#: Controller overhead per harvested batch: flush + reset + loop (addi,
#: bne) cycles during which the fabric idles in a global-mode plane.
BATCH_OVERHEAD_CYCLES = 4
#: Controller preamble before the first compute cycle (two LDIs).
PREAMBLE_CYCLES = 2


@dataclass
class MotionEstimationResult:
    """Outcome of a fabric motion-estimation run."""

    best: Tuple[int, int]       # (dy, dx) of the winning candidate
    best_sad: int
    sad_map: np.ndarray         # SAD of every candidate position
    cycles: int                 # total fabric cycles (incl. control)
    dnodes_used: int
    batches: int


def _deal_candidates(reference_block: np.ndarray, search_area: np.ndarray,
                     n_dnodes: int):
    """Round-robin candidate deal: per-Dnode (ref, cand) pair streams."""
    bh, bw = reference_block.shape
    sh, sw = search_area.shape
    ny, nx = sh - bh + 1, sw - bw + 1
    n_candidates = ny * nx
    batches = -(-n_candidates // n_dnodes)  # ceil

    ref_flat = [int(v) & 0xFFFF for v in reference_block.reshape(-1)]
    ref_stream = [[] for _ in range(n_dnodes)]
    cand_stream = [[] for _ in range(n_dnodes)]
    for c in range(batches * n_dnodes):
        dnode = c % n_dnodes
        if c < n_candidates:
            dy, dx = divmod(c, nx)
            cand = search_area[dy:dy + bh, dx:dx + bw].reshape(-1)
            cand_flat = [int(v) & 0xFFFF for v in cand]
        else:
            cand_flat = ref_flat  # padding candidate (ignored on readout)
        ref_stream[dnode].extend(ref_flat)
        cand_stream[dnode].extend(cand_flat)
    return ref_stream, cand_stream, (ny, nx), batches


def _sad_planes(n_dnodes: int) -> List[ConfigPlane]:
    """The compute / flush / reset planes flipped by the controller."""
    all_addrs = [divmod(i, 2) for i in range(n_dnodes)]
    compute = ConfigPlane(
        modes={a: DnodeMode.LOCAL for a in all_addrs},
    )
    flush_word = MicroWord(Opcode.MOV, Source.R0, dst=Dest.OUT)
    flush = ConfigPlane(
        microwords={a: flush_word for a in all_addrs},
        modes={a: DnodeMode.GLOBAL for a in all_addrs},
    )
    reset_word = MicroWord(Opcode.MOV, Source.ZERO, dst=Dest.R0)
    reset = ConfigPlane(
        microwords={a: reset_word for a in all_addrs},
        modes={a: DnodeMode.GLOBAL for a in all_addrs},
    )
    return [compute, flush, reset]


def _controller_program(batches: int, compute_cycles: int,
                        ) -> List[Instruction]:
    """Batch loop: compute plane, wait, flush, reset, decrement, branch."""
    return [
        Instruction(ROp.LDI, rd=1, imm=batches),
        Instruction(ROp.LDI, rd=2, imm=0),
        # loop: (address 2)
        Instruction(ROp.CFGPLANE, plane=0),            # compute
        Instruction(ROp.WAITI, imm=compute_cycles - 1),
        Instruction(ROp.CFGPLANE, plane=1),            # flush SADs to OUT
        Instruction(ROp.CFGPLANE, plane=2),            # clear accumulators
        Instruction(ROp.ADDI, rd=1, rs=1, imm=-1),
        Instruction(ROp.BNE, rs=1, rt=2, imm=-6),
        Instruction(ROp.HALT),
    ]


def build_me_system(reference_block: np.ndarray, search_area: np.ndarray,
                    dnodes: int = 16,
                    ring_kwargs: Optional[dict] = None
                    ) -> Tuple[RingSystem, dict]:
    """Configure a Ring-*dnodes* system for one full-search match.

    Returns the system plus a metadata dict (batch geometry and the
    sample indices where flushed SADs appear in the output taps).
    *ring_kwargs* (e.g. ``{"backend": "native"}``) are forwarded to the
    :class:`~repro.core.ring.Ring` constructor, so the matcher can run
    on any execution engine.
    """
    reference_block = np.asarray(reference_block)
    search_area = np.asarray(search_area)
    if reference_block.ndim != 2 or search_area.ndim != 2:
        raise SimulationError("block and search area must be 2-D")
    if int(reference_block.max(initial=0)) > 255 or \
            int(search_area.max(initial=0)) > 255 or \
            int(reference_block.min(initial=0)) < 0 or \
            int(search_area.min(initial=0)) < 0:
        raise SimulationError("pixels must be 8-bit (0..255)")

    ring = Ring(RingGeometry.ring(dnodes, width=2), **(ring_kwargs or {}))
    ref_streams, cand_streams, grid, batches = _deal_candidates(
        reference_block, search_area, dnodes)
    pairs = reference_block.size
    compute_cycles = pairs * CYCLES_PER_PAIR

    local_loop = [
        MicroWord(Opcode.ABSDIFF, Source.FIFO1, Source.FIFO2, Dest.R1,
                  flags=Flag.POP_FIFO1 | Flag.POP_FIFO2),
        MicroWord(Opcode.ADD, Source.R0, Source.R1, Dest.R0),
    ]
    # Local programs are preloaded but the Dnodes stay in global mode
    # (idle NOPs) until the controller's first compute plane flips them —
    # otherwise they would start consuming pixel pairs during the
    # controller's preamble cycles.
    for i in range(dnodes):
        layer, pos = divmod(i, 2)
        ring.config.write_local_program(layer, pos, local_loop)
        ring.push_fifo(layer, pos, 1, ref_streams[i])
        ring.push_fifo(layer, pos, 2, cand_streams[i])

    controller = RiscController(
        _controller_program(batches, compute_cycles))
    system = RingSystem(ring, controller, planes=_sad_planes(dnodes))
    for i in range(dnodes):
        layer, pos = divmod(i, 2)
        system.data.add_tap(layer, pos)

    # Flushed SADs are visible right after the flush plane's cycle:
    # batch b's flush executes at system step
    #   PREAMBLE + b*(compute + OVERHEAD) + compute + 1
    # and tap sample indices are 0-based steps.
    period = compute_cycles + BATCH_OVERHEAD_CYCLES
    flush_samples = [PREAMBLE_CYCLES + b * period + compute_cycles
                     for b in range(batches)]
    meta = {
        "grid": grid,
        "batches": batches,
        "compute_cycles": compute_cycles,
        "period": period,
        "flush_sample_indices": flush_samples,
    }
    return system, meta


def full_search_me(reference_block: np.ndarray, search_area: np.ndarray,
                   dnodes: int = 16,
                   ring_kwargs: Optional[dict] = None
                   ) -> MotionEstimationResult:
    """Run the full-search matcher on the fabric and pick the best MV.

    The produced SAD map is bit-exact against
    :func:`repro.kernels.reference.full_search` on every backend
    (*ring_kwargs* selects the engine; on a lane backend the SADs are
    read from lane 0 — a scalar FIFO load reaches every lane, so all
    lanes compute the same map).
    """
    system, meta = build_me_system(reference_block, search_area, dnodes,
                                   ring_kwargs=ring_kwargs)
    system.run_until_halt(max_cycles=2_000_000)

    ny, nx = meta["grid"]
    n_candidates = ny * nx
    sads = np.zeros(n_candidates, dtype=np.int64)
    for b, sample_index in enumerate(meta["flush_sample_indices"]):
        for i in range(dnodes):
            c = b * dnodes + i
            if c >= n_candidates:
                continue
            tap = system.data.taps[i]
            samples = (tap.lane(0) if hasattr(tap, "lane")
                       else tap.samples)
            if sample_index >= len(samples):
                raise SimulationError(
                    f"flush sample {sample_index} missing from tap {i} "
                    f"({len(samples)} collected)"
                )
            sads[c] = samples[sample_index]
    sad_map = sads.reshape(ny, nx)
    best = np.unravel_index(int(np.argmin(sad_map)), sad_map.shape)
    return MotionEstimationResult(
        best=(int(best[0]), int(best[1])),
        best_sad=int(sad_map[best]),
        sad_map=sad_map,
        cycles=system.cycles,
        dnodes_used=dnodes,
        batches=meta["batches"],
    )


@dataclass
class FrameMotionResult:
    """Motion-vector field for a whole frame."""

    vectors: np.ndarray       # (blocks_y, blocks_x, 2) displacement (dy,dx)
    sads: np.ndarray          # best SAD per block
    cycles: int               # total fabric cycles across all blocks
    blocks: Tuple[int, int]


def estimate_frame_motion(previous: np.ndarray, current: np.ndarray,
                          block: int = 8, displacement: int = 8,
                          dnodes: int = 16) -> FrameMotionResult:
    """Block-wise motion field between two frames (H.261-style).

    Every *block* x *block* tile of *current* is matched against its
    clipped +/-*displacement* window in *previous* on the fabric; the
    returned vectors are displacements relative to the block position.
    Whole-frame cost is the sum of the per-block fabric runs — one
    macroblock pipeline after another, as the prototype would stream.
    """
    previous = np.asarray(previous)
    current = np.asarray(current)
    if previous.shape != current.shape:
        raise SimulationError(
            f"frame shapes differ: {previous.shape} vs {current.shape}"
        )
    height, width = current.shape
    if height % block or width % block:
        raise SimulationError(
            f"frame {height}x{width} is not a multiple of block {block}"
        )
    blocks_y, blocks_x = height // block, width // block
    vectors = np.zeros((blocks_y, blocks_x, 2), dtype=np.int64)
    sads = np.zeros((blocks_y, blocks_x), dtype=np.int64)
    total_cycles = 0
    for by in range(blocks_y):
        for bx in range(blocks_x):
            y0, x0 = by * block, bx * block
            wy0 = max(y0 - displacement, 0)
            wx0 = max(x0 - displacement, 0)
            wy1 = min(y0 + block + displacement, height)
            wx1 = min(x0 + block + displacement, width)
            tile = current[y0:y0 + block, x0:x0 + block]
            window = previous[wy0:wy1, wx0:wx1]
            result = full_search_me(tile, window, dnodes=dnodes)
            vectors[by, bx, 0] = wy0 + result.best[0] - y0
            vectors[by, bx, 1] = wx0 + result.best[1] - x0
            sads[by, bx] = result.best_sad
            total_cycles += result.cycles
    return FrameMotionResult(vectors=vectors, sads=sads,
                             cycles=total_cycles,
                             blocks=(blocks_y, blocks_x))


def cycle_model(n_candidates: int = 289, block_pixels: int = 64,
                dnodes: int = 16) -> int:
    """Analytic fabric cycle count of the mapping (validated by tests
    against the simulated count)."""
    batches = -(-n_candidates // dnodes)
    period = block_pixels * CYCLES_PER_PAIR + BATCH_OVERHEAD_CYCLES
    # the final batch skips the trailing loop overhead except flush/reset,
    # plus the halt cycle
    return PREAMBLE_CYCLES + batches * period + 1
