"""Tests for the tier-1 metrics registry and its exporters."""

import json

import pytest

from repro.analysis.metrics import MetricsRegistry, collect_metrics
from repro.controller.core import RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.core.switch import PortSource
from repro.errors import SimulationError
from repro.host.system import RingSystem


def busy_ring(dnodes=8):
    ring = make_ring(dnodes)
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=1))
    ring.config.write_microword(0, 1, MicroWord(
        Opcode.MOV, Source.FIFO1, dst=Dest.OUT))
    ring.config.write_switch_route(1, 0, 1, PortSource.up(0))
    return ring


class TestRingMetrics:
    def test_scalar_counters(self):
        ring = busy_ring()
        ring.run(10)
        snap = collect_metrics(ring)
        assert snap.value("ring_cycles_total") == 10
        assert snap.value("ring_plan_compiles_total") == 1
        assert snap.value("ring_plan_invalidations_total") == 0
        assert snap.value("ring_config_writes_total") == 3
        assert snap.value("ring_instructions_total") == 20

    def test_plan_invalidation_counted_only_when_plan_dropped(self):
        ring = busy_ring()
        ring.run(10)  # plan compiled
        ring.config.write_microword(0, 0, MicroWord(Opcode.NOP))
        ring.config.write_microword(0, 0, MicroWord(Opcode.NOP))
        snap = collect_metrics(ring)
        # two writes, but only the first one dropped a live plan
        assert snap.value("ring_plan_invalidations_total") == 1

    def test_per_dnode_activity_labels(self):
        ring = busy_ring()
        ring.run(5)
        snap = collect_metrics(ring)
        assert snap.value("dnode_instructions_total", dnode="D0.0") == 5
        assert snap.value("dnode_cycles_total", dnode="D3.1") == 5
        assert snap.value("dnode_instructions_total", dnode="D3.1") == 0

    def test_fifo_depth_and_high_water(self):
        ring = busy_ring()
        ring.push_fifo(0, 1, 1, [1, 2, 3, 4, 5])
        ring.config.write_microword(0, 1, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT,
            flags=Flag.POP_FIFO1))
        ring.run(3)
        snap = collect_metrics(ring)
        assert snap.value("fifo_depth_high_water",
                          dnode="D0.1", channel="1") == 5
        assert snap.value("fifo_depth", dnode="D0.1", channel="1") == 2

    def test_switch_route_write_counts(self):
        ring = busy_ring()
        ring.config.write_switch_route(2, 0, 2, PortSource.bus())
        snap = collect_metrics(ring)
        assert snap.value("switch_route_writes_total", switch="1") == 1
        assert snap.value("switch_route_writes_total", switch="2") == 1
        assert snap.value("switch_route_writes_total", switch="0") == 0

    def test_unknown_sample_raises(self):
        snap = collect_metrics(make_ring(4))
        with pytest.raises(KeyError):
            snap.value("no_such_metric")

    def test_registry_rejects_non_fabric(self):
        with pytest.raises(SimulationError):
            MetricsRegistry.of(object())


class TestSystemMetrics:
    def controlled_system(self):
        ring = busy_ring()
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=42),
            Instruction(ROp.BUSW, rs=1),
            Instruction(ROp.WAITI, imm=3),
            Instruction(ROp.HALT),
        ])
        return RingSystem(ring, ctrl)

    def test_controller_counters_included(self):
        system = self.controlled_system()
        system.run_until_halt()
        snap = system.metrics()
        assert snap.value("controller_bus_writes_total") == 1
        assert snap.value("controller_wait_stalls_total") == 2
        assert snap.value("controller_mailbox_stalls_total") == 0
        assert (snap.value("controller_stalls_total")
                == snap.value("controller_wait_stalls_total"))

    def test_uncontrolled_system_omits_controller_family(self):
        system = RingSystem(make_ring(4))
        system.run(2)
        snap = system.metrics()
        assert snap.value("ring_cycles_total") == 2
        with pytest.raises(KeyError):
            snap.value("controller_cycles_total")

    def test_mailbox_stall_split(self):
        ctrl = RiscController([Instruction(ROp.INW, rd=1, ch=0),
                               Instruction(ROp.HALT)])
        ctrl.step()
        ctrl.step()
        assert ctrl.state.mailbox_stalls == 2
        assert ctrl.state.wait_stalls == 0
        assert ctrl.state.stalls == 2


class TestExportFormats:
    def test_json_round_trip(self):
        ring = busy_ring()
        ring.run(4)
        data = json.loads(collect_metrics(ring).to_json())
        assert data["ring_cycles_total"] == 4
        assert data["dnode_instructions_total"]["dnode=D0.0"] == 4

    def test_prometheus_text_format(self):
        ring = busy_ring()
        ring.run(4)
        text = collect_metrics(ring).to_prometheus()
        assert "# HELP repro_ring_cycles_total" in text
        assert "# TYPE repro_ring_cycles_total counter" in text
        assert "repro_ring_cycles_total 4" in text
        assert 'repro_dnode_instructions_total{dnode="D0.0"} 4' in text
        assert "# TYPE repro_ring_utilization gauge" in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        from repro.analysis.metrics import Metric, MetricsSnapshot
        snap = MetricsSnapshot([Metric(
            "weird", "gauge", "escape test",
            (((("name", 'a"b\\c'),), 1.0),))])
        line = [l for l in snap.to_prometheus().splitlines()
                if l.startswith("repro_weird{")][0]
        assert line == 'repro_weird{name="a\\"b\\\\c"} 1'

    def test_prometheus_help_escaping(self):
        """Regression: HELP text with a newline or backslash used to be
        emitted raw, splitting the line and corrupting the scrape."""
        from repro.analysis.metrics import Metric, MetricsSnapshot
        snap = MetricsSnapshot([Metric(
            "weird", "gauge", "first\nsecond \\ third", (((), 1.0),))])
        text = snap.to_prometheus()
        help_line = [l for l in text.splitlines()
                     if l.startswith("# HELP")][0]
        assert help_line == "# HELP repro_weird first\\nsecond \\\\ third"
        # One HELP, one TYPE, one sample — no orphan continuation line.
        assert len(text.splitlines()) == 3

    def test_prometheus_hostile_label_value(self):
        """Regression: a label value holding a newline, quote and
        backslash (e.g. a farm tenant name) must stay on one line."""
        from repro.analysis.metrics import Metric, MetricsSnapshot
        snap = MetricsSnapshot([Metric(
            "weird", "gauge", "escape test",
            (((("tenant", 'a\nb"c\\d'),), 2.0),))])
        lines = snap.to_prometheus().splitlines()
        sample = [l for l in lines if l.startswith("repro_weird{")][0]
        assert sample == 'repro_weird{tenant="a\\nb\\"c\\\\d"} 2'
        assert len(lines) == 3

    def test_floats_keep_precision_ints_render_bare(self):
        ring = busy_ring()
        ring.run(3)
        text = collect_metrics(ring).to_prometheus()
        line = [l for l in text.splitlines()
                if l.startswith("repro_ring_utilization ")][0]
        value = float(line.split()[-1])
        assert value == pytest.approx(2 / 8)  # 2 active Dnodes of Ring-8

    def test_snapshot_is_stable_after_more_cycles(self):
        ring = busy_ring()
        ring.run(2)
        snap = collect_metrics(ring)
        before = snap.value("ring_cycles_total")
        ring.run(5)
        assert snap.value("ring_cycles_total") == before
        assert collect_metrics(ring).value("ring_cycles_total") == 7
