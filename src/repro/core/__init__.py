"""Operative layer of the Systolic Ring: Dnodes, switches, ring fabric.

The public surface re-exported here is what examples and kernels use to
build and run a fabric:

* :class:`~repro.core.isa.MicroWord` / :mod:`repro.core.isa` — the Dnode
  microinstruction set (opcodes, operand sources, binary encoding).
* :class:`~repro.core.dnode.Dnode` — the reconfigurable datapath cell.
* :class:`~repro.core.switch.Switch` — inter-layer interconnect with
  feedback pipelines.
* :class:`~repro.core.ring.Ring` — the full fabric plus clock engine.
"""

from repro.core.isa import (
    Flag,
    MicroWord,
    Opcode,
    Source,
    Dest,
    encode,
    decode,
)
from repro.core.alu import execute_op
from repro.core.regfile import RegisterFile
from repro.core.local_controller import LocalController
from repro.core.dnode import Dnode, DnodeMode
from repro.core.switch import PortSource, Switch, SwitchConfig
from repro.core.config_memory import ConfigMemory, ConfigPlane
from repro.core.address_map import AddressMap
from repro.core.snapshot import RingSnapshot, capture, restore
from repro.core.ring import Ring, RingGeometry
from repro.core.batchpath import BatchRing, batch_execute_op

__all__ = [
    "Flag",
    "MicroWord",
    "Opcode",
    "Source",
    "Dest",
    "encode",
    "decode",
    "execute_op",
    "RegisterFile",
    "LocalController",
    "Dnode",
    "DnodeMode",
    "PortSource",
    "Switch",
    "SwitchConfig",
    "ConfigMemory",
    "ConfigPlane",
    "AddressMap",
    "RingSnapshot",
    "capture",
    "restore",
    "Ring",
    "RingGeometry",
    "BatchRing",
    "batch_execute_op",
]
