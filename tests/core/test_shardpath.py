"""Sharded batch execution: pool lifecycle, stimuli, migration, errors.

Directed tests for :mod:`repro.core.shardpath` — the multi-process split
of the batch engine's lane axis.  The property-based bit-identity net
lives in ``test_differential.py``; this file pins the machinery itself:
span arithmetic, the picklable chunk stimuli, in-process fallback,
shared-memory pool execution, FIFO access and writeback, checkpoint and
lane migration (elastic resharding), configuration-sync replication,
error paths, metrics families, and the CLI plumbing.

Worker pools run with 2 workers so every test exercises real process
boundaries regardless of the host core count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ring import Ring, RingGeometry
from repro.core.shardpath import (
    CycleStimulus,
    FnStimulus,
    ShardedBatchRing,
    StreamStimulus,
    shard_spans,
)
from repro.core.snapshot import capture, restore, state_digest
from repro.kernels.fir import build_spatial_fir
from repro.errors import ConfigurationError, SimulationError

_TAPS = [3, -1, 4, 1, -5, 9, 2, -6]


def _fir_ring(**kwargs) -> Ring:
    ring = Ring(RingGeometry(layers=len(_TAPS), width=2), **kwargs)
    build_spatial_fir(_TAPS, ring=ring)
    return ring


def _host_zero(channel: int) -> int:
    return 0


def _host_pattern(channel: int, cycle: int) -> int:
    """Module-level (picklable) deterministic host function."""
    return (131 * channel + 7 * cycle + 5) & 0xFFFF


def _lane_host(ring: Ring, batch: int):
    """Per-lane array stimulus forcing the per-cycle parent path."""
    def host_in(channel: int) -> np.ndarray:
        return np.array(
            [(131 * channel + 7 * ring.cycles + 1009 * lane) & 0xFFFF
             for lane in range(batch)], dtype=np.int64)
    return host_in


@pytest.fixture
def shard_pair():
    """A (batch twin, shard ring, shard engine) triple; pool torn down."""
    batch = _fir_ring(backend="batch", batch_size=5)
    shard = _fir_ring(backend="shard", batch_size=5, shard_workers=2)
    engine = shard.shard
    yield batch, shard, engine
    engine.close()


class TestShardSpans:
    def test_even_split(self):
        assert shard_spans(8, 2) == [(0, 4), (4, 8)]

    def test_remainder_spread_to_first_workers(self):
        assert shard_spans(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_spans_tile_the_batch(self):
        for batch in (1, 5, 9, 32):
            for workers in (1, 2, 3, 7):
                spans = shard_spans(batch, workers)
                covered = [lane for lo, hi in spans
                           for lane in range(lo, hi)]
                assert covered == list(range(batch))


class TestChunkStimuli:
    def test_fn_stimulus_scalar_passthrough(self):
        stim = FnStimulus(_host_zero)
        assert stim.lane_words(0, 12) == 0
        assert stim.sliced(1, 3).lane_words(0, 99) == 0

    def test_cycle_stimulus_slices_batch_reads(self):
        def fn(channel, cycle):
            return [channel + cycle + lane for lane in range(4)]
        stim = CycleStimulus(fn).sliced(1, 3)
        got = stim.lane_words(10, 2)
        assert got.tolist() == [13, 14]

    def test_cycle_stimulus_scalar_broadcast(self):
        stim = CycleStimulus(_host_pattern).sliced(0, 2)
        assert stim.lane_words(1, 3) == _host_pattern(1, 3)

    def test_stream_stimulus_all_queue_then_idle(self):
        stim = StreamStimulus(100, {0: ("all", [11, 22])}, idle={0: 9})
        assert stim.lane_words(0, 100) == 11
        assert stim.lane_words(0, 101) == 22
        assert stim.lane_words(0, 102) == 9

    def test_stream_stimulus_unknown_channel_presents_idle(self):
        stim = StreamStimulus(0, {}, idle={3: 7})
        assert stim.lane_words(3, 5) == 7
        assert stim.lane_words(4, 5) == 0

    def test_stream_stimulus_lane_queues_sliced(self):
        lanes = [[1], [2, 20], [3, 30]]
        stim = StreamStimulus(0, {0: ("lanes", lanes)}, idle={0: 99})
        full = stim.lane_words(0, 1)
        assert full.tolist() == [99, 20, 30]
        shard = stim.sliced(1, 3)
        assert shard.lane_words(0, 0).tolist() == [2, 3]
        assert shard.lane_words(0, 1).tolist() == [20, 30]


class TestFallback:
    def test_single_worker_stays_in_process(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=1)
        engine = ring.shard
        assert not engine.using_processes
        ring.run(30, host_in=_host_zero)
        twin = _fir_ring(backend="batch", batch_size=4)
        twin.run(30, host_in=_host_zero)
        assert state_digest(ring) == state_digest(twin)
        engine.close()

    def test_workers_clamped_to_batch(self):
        ring = _fir_ring(backend="shard", batch_size=2, shard_workers=8)
        assert ring.shard.workers == 2
        ring.shard.close()

    def test_pool_failure_falls_back(self, monkeypatch):
        monkeypatch.setattr(ShardedBatchRing, "_shared_memory_module",
                            staticmethod(lambda: None))
        ring = _fir_ring(backend="shard", batch_size=3, shard_workers=2)
        engine = ring.shard
        assert not engine.using_processes
        ring.run(20, host_in=_host_zero)
        twin = _fir_ring(backend="batch", batch_size=3)
        twin.run(20, host_in=_host_zero)
        assert state_digest(ring) == state_digest(twin)
        engine.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            _fir_ring(backend="shard", batch_size=2, shard_workers=0)
        with pytest.raises(ConfigurationError):
            _fir_ring(backend="batch", shard_workers=2)
        with pytest.raises(ConfigurationError):
            ShardedBatchRing(_fir_ring(), 0)


class TestPoolExecution:
    def test_chunk_mode_matches_batch_backend(self, shard_pair):
        batch, shard, engine = shard_pair
        assert engine.using_processes and engine.workers == 2
        batch.run(40, host_in=_host_zero)
        shard.run(40, host_in=_host_zero)
        assert state_digest(shard) == state_digest(batch)
        assert engine.chunks >= 1

    def test_per_cycle_mode_matches_batch_backend(self, shard_pair):
        batch, shard, engine = shard_pair
        batch.run(15, host_in=_lane_host(batch, 5))
        shard.run(15, host_in=_lane_host(shard, 5))
        assert state_digest(shard) == state_digest(batch)

    def test_step_advances_one_cycle(self, shard_pair):
        _, shard, engine = shard_pair
        engine.step(host_in=_host_zero)
        assert shard.cycles == 1

    def test_push_fifo_broadcast_and_per_lane(self, shard_pair):
        batch, shard, engine = shard_pair
        for ring in (batch, shard):
            ring.push_fifo(0, 0, 1, [10, 20])
        engine.push_fifo(0, 0, 1, 77, lane=3)
        batch.batch.push_fifo(0, 0, 1, 77, lane=3)
        assert engine.fifo_contents(0, 0, 1, 0) == [10, 20]
        assert engine.fifo_contents(0, 0, 1, 3) == [10, 20, 77]
        batch.run(10, host_in=_host_zero)
        shard.run(10, host_in=_host_zero)
        assert state_digest(shard) == state_digest(batch)

    def test_push_fifo_validates(self, shard_pair):
        _, _, engine = shard_pair
        with pytest.raises(ConfigurationError):
            engine.push_fifo(0, 0, 3, [1])
        with pytest.raises(ConfigurationError):
            engine.push_fifo(0, 0, 1, [1], lane=99)
        with pytest.raises(ValueError):
            engine.push_fifo(0, 0, 1, [0x10000])

    def test_store_lane_matches_batch_store_lane(self, shard_pair):
        batch, shard, engine = shard_pair
        batch.run(25, host_in=_lane_host(batch, 5))
        shard.run(25, host_in=_lane_host(shard, 5))
        for lane in range(5):
            want = Ring(batch.geometry)
            batch.batch.store_lane(lane, want)
            got = Ring(shard.geometry)
            engine.store_lane(lane, got)
            assert state_digest(got) == state_digest(want), (
                f"lane {lane} writeback diverged"
            )

    def test_lane_views_have_batch_shape(self, shard_pair):
        _, shard, engine = shard_pair
        shard.run(5, host_in=_host_zero)
        assert engine.lane_outs(0, 0).shape == (5,)
        assert engine.lane_regs(0, 0).shape[-1] == 5
        assert engine.lane_underflows.shape == (5,)
        pops = engine.lane_fifo_pops
        assert pops[(0, 0)].shape == (5,)

    def test_config_change_syncs_once_on_next_run(self, shard_pair):
        from repro.core.isa import NOP_WORD
        batch, shard, engine = shard_pair
        batch.run(10, host_in=_host_zero)
        shard.run(10, host_in=_host_zero)
        for ring in (batch, shard):
            ring.config.write_microword(2, 1, NOP_WORD)
        assert engine._config_dirty
        shard.run(10, host_in=_host_zero)
        batch.run(10, host_in=_host_zero)
        assert engine.syncs == 1
        assert not engine._config_dirty
        assert state_digest(shard) == state_digest(batch)

    def test_set_plan_cache_broadcasts(self, shard_pair):
        _, shard, engine = shard_pair
        engine.set_plan_cache(0)
        shard.run(10, host_in=_host_zero)
        engine.set_plan_cache(4)
        shard.run(10, host_in=_host_zero)
        twin = _fir_ring(backend="batch", batch_size=5)
        twin.run(20, host_in=_host_zero)
        assert state_digest(shard) == state_digest(twin)

    def test_negative_cycles_rejected(self, shard_pair):
        _, _, engine = shard_pair
        with pytest.raises(SimulationError):
            engine.run(-1)

    def test_bad_batch_host_shape_rejected(self, shard_pair):
        _, _, engine = shard_pair
        with pytest.raises(SimulationError):
            engine.run(1, host_in=lambda ch: np.zeros(3, dtype=np.int64))

    def test_closed_engine_rejects_use(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        engine.close()
        with pytest.raises(SimulationError):
            engine.run(1)
        engine.close()  # idempotent

    def test_repr_mentions_mode(self, shard_pair):
        _, _, engine = shard_pair
        assert "ShardedBatchRing" in repr(engine)


class TestStrictFifoDivergence:
    def test_abort_matches_batch_message_and_state(self):
        """Lanes run dry at different cycles; the parent must adopt the
        earliest-aborting shard's cycle and re-raise the scalar text."""
        def loaded(backend, **kw):
            ring = _fir_ring(backend=backend, batch_size=4,
                             strict_fifos=True, **kw)
            engine = ring.batch if backend == "batch" else ring.shard
            # FIFO-sourced input with per-lane depth: lane i holds i
            # words, so shards abort at different chunk offsets.
            from repro.core.ring import PortSource
            ring.config.write_switch_route(0, 0, 1, PortSource.rp(1, 1))
            from repro.core.isa import Dest, MicroWord, Opcode, Source
            ring.config.write_microword(0, 0, MicroWord(
                Opcode.ADD, Source.FIFO1, Source.IMM, Dest.OUT, imm=1))
            for lane in range(4):
                engine.push_fifo(0, 0, 1, [7] * lane, lane=lane)
            return ring, engine

        results = {}
        for backend, kw in (("batch", {}), ("shard",
                                            {"shard_workers": 2})):
            ring, engine = loaded(backend, **kw)
            with pytest.raises(SimulationError) as err:
                ring.run(10, host_in=_host_zero)
            # Lanes 0-1 belong to the earliest-aborting shard, whose
            # abort cycle equals the whole-batch engine's; lanes 2-3 may
            # legitimately run ahead under sharding (the documented
            # strict-FIFO divergence), so only the aborting shard's
            # lanes are comparable.
            lanes = []
            for lane in (0, 1):
                target = Ring(ring.geometry)
                engine.store_lane(lane, target)
                lanes.append(state_digest(target))
            results[backend] = (str(err.value), ring.cycles, lanes)
            if backend == "shard":
                engine.close()
        assert results["shard"][0] == results["batch"][0]
        assert results["shard"][1] == results["batch"][1]
        assert results["shard"][2] == results["batch"][2]


class TestCheckpointAndMigration:
    def test_snapshot_rollback_replay_bit_identical(self, shard_pair):
        batch, shard, engine = shard_pair
        for ring in (batch, shard):
            ring.run(20, host_in=_lane_host(ring, 5))
        snap = capture(shard)
        shard.run(15, host_in=_host_zero)
        batch.run(15, host_in=_host_zero)
        after = state_digest(shard)
        restore(shard, snap)
        shard.run(15, host_in=_host_zero)
        assert state_digest(shard) == after == state_digest(batch)

    def test_capture_lanes_matches_batch_format(self, shard_pair):
        batch, shard, engine = shard_pair
        for ring in (batch, shard):
            ring.push_fifo(1, 0, 2, [5, 6])
            ring.run(12, host_in=_lane_host(ring, 5))
        want = batch.batch.capture_lanes()
        got = engine.capture_lanes()
        assert got == want

    def test_batch_snapshot_restores_onto_shard_ring(self, shard_pair):
        """A lanes-bearing snapshot captured from the *batch* backend
        restores onto a shard-backend ring of the same lane count —
        snapshot.restore routes the lanes through restore_lanes (scalar
        stats ride the snapshot itself, not the lane dict)."""
        batch, shard, engine = shard_pair
        batch.run(18, host_in=_lane_host(batch, 5))
        restore(shard, capture(batch))
        assert state_digest(shard) == state_digest(batch)
        shard.run(7, host_in=_host_zero)
        batch.run(7, host_in=_host_zero)
        assert state_digest(shard) == state_digest(batch)

    def test_restore_lanes_rejects_wrong_batch(self, shard_pair):
        _, _, engine = shard_pair
        other = _fir_ring(backend="batch", batch_size=3)
        state = other.batch.capture_lanes()
        with pytest.raises(SimulationError):
            engine.restore_lanes(state)

    @pytest.mark.parametrize("plan", [(2, 1), (2, 4), (1, 2)])
    def test_elastic_resharding_preserves_every_lane(self, plan):
        first, second = plan
        shard = _fir_ring(backend="shard", batch_size=5,
                          shard_workers=first)
        twin = _fir_ring(backend="batch", batch_size=5)
        engine = shard.shard
        shard.run(20, host_in=_lane_host(shard, 5))
        twin.run(20, host_in=_lane_host(twin, 5))
        engine.set_workers(second)
        assert engine.workers == min(second, 5)
        assert engine.reshards == 1
        shard.run(20, host_in=_host_zero)
        twin.run(20, host_in=_host_zero)
        assert state_digest(shard) == state_digest(twin)
        engine.close()

    def test_set_workers_same_count_is_noop(self, shard_pair):
        _, _, engine = shard_pair
        engine.set_workers(2)
        assert engine.reshards == 0

    def test_set_backend_shard_workers_migrates_live(self):
        shard = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        shard.run(10, host_in=_host_zero)
        shard.set_backend("shard", shard_workers=1)
        engine = shard.shard
        assert engine.reshards == 1 and not engine.using_processes
        twin = _fir_ring(backend="batch", batch_size=4)
        twin.run(10, host_in=_host_zero)
        assert state_digest(shard) == state_digest(twin)
        engine.close()


class TestCrashSafeTeardown:
    """Satellite: no /dev/shm leaks and no double-unlink, ever."""

    def _attachable(self, name: str) -> bool:
        from multiprocessing import shared_memory
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        block.close()
        return True

    def test_close_releases_blocks_and_stays_idempotent(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        ring.run(5, host_in=_host_zero)
        names = [block.name for block in engine._blocks]
        assert names and all(self._attachable(n) for n in names)
        engine.close()
        assert engine._blocks == []
        assert not any(self._attachable(n) for n in names)
        # Second close and a direct second release: nothing to double-
        # unlink, no resource-tracker noise.
        engine.close()
        engine._release_blocks()

    def test_finalizer_guard_tears_down_live_pool(self):
        """The crash path: drop the engine without close() and the
        weakref.finalize guard must reap pipes, processes and blocks."""
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        ring.run(5, host_in=_host_zero)
        procs = list(engine._procs)
        names = [block.name for block in engine._blocks]
        assert procs and all(p.is_alive() for p in procs)
        engine._finalizer()  # what GC / interpreter exit would run
        assert engine._procs == [] and engine._conns == []
        assert engine._blocks == []
        for proc in procs:
            proc.join(timeout=5)
            assert not proc.is_alive()
        assert not any(self._attachable(n) for n in names)
        # A late graceful close after the guard already ran is a no-op.
        engine.close()

    def test_close_then_finalizer_is_noop(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        engine.close()
        engine._finalizer()  # lists already drained; must not raise

    def test_inline_engine_finalizer_harmless(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=1)
        engine = ring.shard
        assert not engine.using_processes
        engine._finalizer()
        engine.close()

    def test_garbage_collection_reaps_unclosed_engine(self):
        import gc
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        ring.run(3, host_in=_host_zero)
        procs = list(engine._procs)
        names = [block.name for block in engine._blocks]
        del ring, engine
        gc.collect()
        for proc in procs:
            proc.join(timeout=5)
            assert not proc.is_alive()
        assert not any(self._attachable(n) for n in names)


class TestRingIntegration:
    def test_shard_property_requires_backend(self):
        ring = _fir_ring()
        with pytest.raises(ConfigurationError):
            ring.shard

    def test_reset_tears_pool_down(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        ring.run(5, host_in=_host_zero)
        ring.reset()
        assert ring._shard_engine is None
        assert engine._closed
        # A fresh engine comes up on demand after reset.
        ring.run(3, host_in=_host_zero)
        assert ring._shard_engine is not None
        ring._shard_engine.close()

    def test_set_backend_away_detaches_engine(self):
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=2)
        engine = ring.shard
        ring.run(5, host_in=_host_zero)
        ring.set_backend("fastpath")
        assert engine._closed
        ring.run(5, host_in=_host_zero)
        assert ring.cycles == 10


class TestSystemChunkPath:
    def test_streamed_system_matches_batch_system(self):
        from repro.asm import assemble, load_system
        src = (".ring boot\n"
               "dnode 0.0 global\n"
               "    add out, in1, #5\n"
               "switch 0\n"
               "    route 0.1 <- host0\n")
        obj = assemble(src, layers=4, width=2)

        def run_system(backend, **kw):
            system = load_system(obj)
            system.ring.set_backend(backend, 3, **kw)
            from repro.host.streams import DataController
            system.data = DataController(batch=3)
            system.data.stream(0, [10, 20, 30])
            system.data.stream(0, [100], lane=1)
            system.run(8)
            return system

        want = run_system("batch")
        got = run_system("shard", shard_workers=2)
        engine = got.ring.shard
        assert engine.chunks == 1, "idle chunk must be one IPC round"
        assert state_digest(got.ring) == state_digest(want.ring)
        for index in (0,):
            a = want.data.channel(index)
            b = got.data.channel(index)
            assert b.delivered == a.delivered
            assert b.underruns == a.underruns
        engine.close()

    def test_tapped_system_collects_per_lane(self):
        from repro.asm import assemble, load_system
        src = (".ring boot\n"
               "dnode 0.0 global\n"
               "    add out, in1, #5\n"
               "switch 0\n"
               "    route 0.1 <- host0\n")
        obj = assemble(src, layers=4, width=2)

        def run_system(backend, **kw):
            system = load_system(obj)
            system.ring.set_backend(backend, 2, **kw)
            from repro.host.streams import DataController
            system.data = DataController(batch=2)
            system.data.stream(0, [10, 20], lane=0)
            system.data.stream(0, [1, 2], lane=1)
            tap = system.data.add_tap(0, 0, limit=4)
            system.run(6)
            return tap

        want = run_system("batch")
        got = run_system("shard", shard_workers=2)
        assert got.lane(0) == want.lane(0)
        assert got.lane(1) == want.lane(1)


class TestShardMetrics:
    def test_families_present_and_live(self, shard_pair):
        _, shard, engine = shard_pair
        from repro.host.system import RingSystem
        from repro.analysis.metrics import MetricsRegistry
        shard.run(10, host_in=_host_zero)
        engine.set_workers(1)
        engine.set_workers(2)
        snapshot = MetricsRegistry.of(RingSystem(shard)).collect()
        assert snapshot.value("shard_workers") == 2
        assert snapshot.value("shard_using_processes") == 1
        assert snapshot.value("shard_chunks_total") >= 1
        assert snapshot.value("shard_reshards_total") == 2
        assert snapshot.value("shard_messages_total") > 0
        lanes = sum(snapshot.value("shard_worker_lanes", worker=str(w))
                    for w in range(2))
        assert lanes == 5


class TestShardCli:
    SRC = (".ring boot\n"
           "dnode 0.0 global\n"
           "    add out, in1, #5\n"
           "switch 0\n"
           "    route 0.1 <- host0\n")

    @pytest.fixture
    def ring_obj(self, tmp_path, capsys):
        from repro.tools.__main__ import main
        path = tmp_path / "ring.asm"
        path.write_text(self.SRC)
        main(["asm", str(path)])
        capsys.readouterr()
        return path.with_suffix(".obj")

    def test_run_backend_shard(self, ring_obj, capsys):
        from repro.tools.__main__ import main
        code = main(["run", str(ring_obj), "--backend", "shard",
                     "--batch-size", "3", "--shard-workers", "2",
                     "--stream", "0:10,20,30", "--tap", "0.0:3",
                     "--cycles", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ran 6 cycles x 3 lanes" in out
        assert "lane 0: [15, 25, 35]" in out
        assert "lane 2: [15, 25, 35]" in out

    def test_shard_workers_requires_shard_backend(self, ring_obj, capsys):
        from repro.tools.__main__ import main
        code = main(["run", str(ring_obj), "--backend", "batch",
                     "--batch-size", "2", "--shard-workers", "2"])
        assert code == 1
        assert "--shard-workers requires" in capsys.readouterr().err

    def test_batch_size_guard_names_both_backends(self, ring_obj, capsys):
        from repro.tools.__main__ import main
        code = main(["run", str(ring_obj), "--batch-size", "2"])
        assert code == 1
        err = capsys.readouterr().err
        assert "batch or shard" in err


class TestWorkerCap:
    """Satellite: effective workers never exceed the core-count ceiling.

    The ceiling is ``os.cpu_count()`` by default and overridable with
    ``REPRO_SHARD_MAX_WORKERS`` (the suite's conftest pins it to 8 so
    2-worker pool tests behave identically on 1-core runners); the
    clamped difference surfaces as the ``shard_workers_capped`` gauge.
    """

    def test_ceiling_follows_env_override(self, monkeypatch):
        from repro.core.shardpath import MAX_WORKERS_ENV, max_shard_workers
        monkeypatch.setenv(MAX_WORKERS_ENV, "3")
        assert max_shard_workers() == 3

    def test_ceiling_defaults_to_cpu_count(self, monkeypatch):
        import os
        from repro.core.shardpath import MAX_WORKERS_ENV, max_shard_workers
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert max_shard_workers() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", ["zero?", "0", "-2"])
    def test_ceiling_rejects_bad_env(self, monkeypatch, bad):
        from repro.core.shardpath import MAX_WORKERS_ENV, max_shard_workers
        monkeypatch.setenv(MAX_WORKERS_ENV, bad)
        with pytest.raises(ConfigurationError):
            max_shard_workers()

    def test_oversubscribed_request_is_clamped(self, monkeypatch):
        from repro.core.shardpath import MAX_WORKERS_ENV
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=4)
        engine = ring.shard
        try:
            assert engine.workers_requested == 4
            assert engine.workers == 1
        finally:
            engine.close()

    def test_capped_metric_reports_the_difference(self, monkeypatch):
        import json
        from repro.analysis.metrics import collect_metrics
        from repro.core.shardpath import MAX_WORKERS_ENV
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=3)
        engine = ring.shard
        try:
            ring.run(4, host_in=_host_zero)
            data = json.loads(collect_metrics(ring).to_json())
            assert data["shard_workers"] == 1
            assert data["shard_workers_capped"] == 2
        finally:
            engine.close()

    def test_uncapped_request_reports_zero(self, shard_pair):
        import json
        from repro.analysis.metrics import collect_metrics
        _, shard, engine = shard_pair
        shard.run(2, host_in=_host_zero)
        data = json.loads(collect_metrics(shard).to_json())
        assert data["shard_workers_capped"] == 0

    def test_set_workers_respects_ceiling(self, monkeypatch):
        from repro.core.shardpath import MAX_WORKERS_ENV
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        ring = _fir_ring(backend="shard", batch_size=4, shard_workers=1)
        engine = ring.shard
        try:
            ring.run(2, host_in=_host_zero)
            before = state_digest(ring)
            engine.set_workers(4)
            assert engine.workers == 1
            assert engine.workers_requested == 4
            assert state_digest(ring) == before, "migration bit-identical"
        finally:
            engine.close()

    def test_default_request_uses_ceiling(self, monkeypatch):
        from repro.core.shardpath import MAX_WORKERS_ENV
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        ring = _fir_ring(backend="shard", batch_size=5)
        engine = ring.shard
        try:
            assert engine.workers == 2
            assert engine.workers_requested == 2
        finally:
            engine.close()
