"""The Dnode's 4x16-bit register file with master-slave update semantics.

The paper (§4.1) stresses that "all the possible operations can take place
in a single clock cycle, even between two registers, with the result stored
in one of these two registers (master-slave register architecture)".  We
model that by separating *read* (always the value latched at the previous
clock edge) from *write* (staged, committed at :meth:`RegisterFile.commit`).
"""

from __future__ import annotations

from typing import List, Optional

from repro import word
from repro.errors import SimulationError

NUM_REGISTERS = 4


class RegisterFile:
    """Four 16-bit registers with edge-triggered (master-slave) writes.

    Reads within a cycle observe the pre-edge values even after a staged
    write, so an instruction like ``add r0, r0, r1`` behaves like real
    hardware: both operands are the old values and the sum appears only
    after :meth:`commit`.
    """

    __slots__ = ("_values", "_pending_index", "_pending_value")

    def __init__(self, initial: Optional[List[int]] = None):
        if initial is None:
            self._values = [0] * NUM_REGISTERS
        else:
            if len(initial) != NUM_REGISTERS:
                raise SimulationError(
                    f"register file holds {NUM_REGISTERS} words, "
                    f"got {len(initial)} initial values"
                )
            self._values = [word.check(v, "register init") for v in initial]
        self._pending_index: Optional[int] = None
        self._pending_value = 0

    def read(self, index: int) -> int:
        """Read register *index* (0..3) as latched at the last clock edge."""
        self._check_index(index)
        return self._values[index]

    def stage_write(self, index: int, value: int) -> None:
        """Stage a write to register *index*, visible after :meth:`commit`.

        A Dnode executes one microinstruction per cycle, so at most one
        register write can be staged; staging a second one in the same
        cycle indicates an engine bug.
        """
        self._check_index(index)
        word.check(value, "register write")
        if self._pending_index is not None:
            raise SimulationError(
                "register file already has a staged write this cycle"
            )
        self._pending_index = index
        self._pending_value = value

    def commit(self) -> None:
        """Clock edge: apply the staged write, if any."""
        if self._pending_index is not None:
            self._values[self._pending_index] = self._pending_value
            self._pending_index = None

    def snapshot(self) -> List[int]:
        """Copy of the committed register values (debug/trace helper)."""
        return list(self._values)

    def reset(self) -> None:
        """Clear all registers and any staged write.

        Clears the backing list in place — the list object's identity is
        stable for the life of the register file, so the ring's fast-path
        engine can close over it directly.
        """
        for i in range(NUM_REGISTERS):
            self._values[i] = 0
        self._pending_index = None

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < NUM_REGISTERS:
            raise SimulationError(
                f"register index must be 0..{NUM_REGISTERS - 1}, got {index}"
            )

    def __repr__(self) -> str:
        vals = ", ".join(f"r{i}={v:#06x}" for i, v in enumerate(self._values))
        return f"RegisterFile({vals})"
