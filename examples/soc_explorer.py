#!/usr/bin/env python
"""Silicon exploration: Table 3, the Fig. 7 SoC, and the scaling story.

Prints the synthesis-results table from the calibrated area/timing model,
budgets the "foreseeable SoC" of Fig. 7 (ARM7 + Ring-64 on 12 mm^2),
then sweeps ring sizes to quantify the scalability claims: linear area,
constant clock (vs degrading mesh/crossbar), shrinking overhead.

Run:  python examples/soc_explorer.py
"""

from repro.analysis import render_table, ring_peak_mips
from repro.core.ring import RingGeometry
from repro.tech.area import core_area_mm2, synthesis_table
from repro.tech.soc import foreseeable_soc
from repro.tech.timing import (
    crossbar_frequency_hz,
    estimated_frequency_hz,
    mesh_frequency_hz,
)


def print_table3() -> None:
    rows = [[name, dnode, core, freq]
            for name, dnode, core, freq in synthesis_table()]
    print(render_table(
        ["techno", "D-node area mm^2", "core area mm^2", "est. MHz"],
        rows, title="Table 3 — synthesis results (Ring-8 core)",
        float_format="{:.2f}"))
    print()


def print_fig7() -> None:
    print("Fig. 7 — foreseeable SoC (0.18 um, 4 x 3 mm):")
    print(foreseeable_soc())
    print()


def print_scaling() -> None:
    rows = []
    for dnodes in (8, 16, 32, 64, 128, 256):
        report = core_area_mm2(RingGeometry.ring(dnodes), "0.18um")
        rows.append([
            f"Ring-{dnodes}",
            report.total_mm2,
            100.0 * report.overhead_fraction,
            ring_peak_mips(dnodes),
            estimated_frequency_hz("0.18um", dnodes) / 1e6,
            mesh_frequency_hz("0.18um", dnodes) / 1e6,
            crossbar_frequency_hz("0.18um", dnodes) / 1e6,
        ])
    print(render_table(
        ["fabric", "area mm^2", "overhead %", "peak MIPS",
         "ring MHz", "mesh MHz", "xbar MHz"],
        rows, title="Scaling sweep (0.18 um)", float_format="{:.1f}"))
    print("\nThe ring clock is size-independent (nearest-neighbour "
          "wiring + pipelined feedback); mesh and crossbar fabrics sag "
          "as die-crossing wires grow — the paper's §4.2 argument.")


def main() -> None:
    print_table3()
    print_fig7()
    print_scaling()


if __name__ == "__main__":
    main()
