"""Dynamic-power model (an extension beyond the paper's evaluation).

The paper motivates the architecture with the "area, cost and
consumption problems" of big CPUs but publishes no power figures.  This
module adds a first-order CMOS dynamic-power model so the energy story
can be quantified:

    P_dyn = gates x activity x E_switch(node) x f
    E_switch = C_gate x Vdd^2       (per gate toggle)

with per-node supply/capacitance from the usual generation tables
(0.35 um/3.3 V, 0.25 um/2.5 V, 0.18 um/1.8 V, 0.13 um/1.2 V).  Memory
arrays toggle far less than logic and are derated.  Results land where
late-90s coarse-grain fabrics did (a Ring-8 core under ~100 mW at
200 MHz) versus ~25 W for the Pentium II 450 the paper compares against
— the two-to-three-orders-of-magnitude MIPS/W gap that motivated
reconfigurable computing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.core.ring import RingGeometry
from repro.errors import TechnologyError
from repro.tech import gates
from repro.tech.nodes import TechNode, get_node

NodeLike = Union[str, TechNode]

#: Supply voltage by feature size (um -> volts).
SUPPLY_V: Dict[str, float] = {
    "0.35um": 3.3,
    "0.25um": 2.5,
    "0.18um": 1.8,
    "0.13um": 1.2,
}

#: Switched capacitance per NAND2-equivalent gate (farads), scaling with
#: feature size: ~12 fF at 0.25 um (gate + local wire load).
def gate_capacitance_f(feature_um: float) -> float:
    return 12e-15 * (feature_um / 0.25)

#: Memory bits toggle far less than logic gates.
MEMORY_ACTIVITY_DERATE = 0.05
#: Leakage as a fraction of full-activity dynamic power (tiny at these
#: generations).
LEAKAGE_FRACTION = 0.01


@dataclass(frozen=True)
class PowerEstimate:
    """A core power estimate at one operating point."""

    node: str
    frequency_hz: float
    activity: float
    dynamic_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w


def _supply(node: TechNode) -> float:
    try:
        return SUPPLY_V[node.name]
    except KeyError:
        raise TechnologyError(f"no supply voltage for node {node.name!r}")


def switch_energy_j(node: NodeLike) -> float:
    """Energy of one gate toggle at *node* (C * Vdd^2)."""
    tech = get_node(node) if isinstance(node, str) else node
    vdd = _supply(tech)
    return gate_capacitance_f(tech.feature_um) * vdd * vdd


def core_power(geometry: RingGeometry, node: NodeLike,
               frequency_hz: float = 200e6,
               activity: float = 0.20) -> PowerEstimate:
    """Dynamic + leakage power of a whole core.

    Args:
        geometry: ring shape.
        node: technology node.
        frequency_hz: clock.
        activity: average toggle probability of logic nodes per cycle
            (0.15-0.25 is typical for busy datapaths).
    """
    if not 0.0 < activity <= 1.0:
        raise TechnologyError(f"activity must be in (0, 1], got {activity}")
    if frequency_hz <= 0:
        raise TechnologyError("frequency must be positive")
    tech = get_node(node) if isinstance(node, str) else node
    energy = switch_energy_j(tech)
    logic_gates = (
        geometry.dnodes * gates.dnode_gate_count()
        + geometry.layers * gates.switch_gate_count(geometry.width)
        + gates.CONTROLLER_GATES + gates.DATA_CONTROLLER_GATES
    )
    mem_bits = gates.memory_bits(geometry.dnodes, geometry.layers,
                                 geometry.width)
    dynamic = (logic_gates * activity
               + mem_bits * activity * MEMORY_ACTIVITY_DERATE) \
        * energy * frequency_hz
    leakage = logic_gates * energy * frequency_hz * LEAKAGE_FRACTION
    return PowerEstimate(node=tech.name, frequency_hz=frequency_hz,
                         activity=activity, dynamic_w=dynamic,
                         leakage_w=leakage)


def mips_per_watt(dnodes: int, node: NodeLike = "0.18um",
                  frequency_hz: float = 200e6,
                  activity: float = 0.20) -> float:
    """Peak-MIPS energy efficiency of a Ring-N core."""
    from repro.analysis.mips import ring_peak_mips

    geometry = RingGeometry.ring(dnodes)
    estimate = core_power(geometry, node, frequency_hz, activity)
    return ring_peak_mips(dnodes, frequency_hz) / estimate.total_w


#: Published-class figure for the §5.1 CPU comparator (W).
PENTIUM_II_450_POWER_W = 25.0
