"""The specific input/output data controller of the Systolic Ring.

Paper §4.1/§4.2: the switches manage "data communications with the host
processor by direct dedicated ports", and the local mode "joined to a
specific input/output Data controller ... allows very efficient and high
bandwidth data oriented computation".

* :class:`StreamChannel` — an input stream presented on a direct port:
  one 16-bit word per fabric cycle (the head value is stable within a
  cycle; the channel advances at the clock edge).
* :class:`OutputTap` — samples a Dnode's output register every cycle
  (optionally after a pipeline-fill delay), collecting result streams.
* :class:`DataController` — the bank of channels and taps a
  :class:`~repro.host.system.RingSystem` drives each cycle.

With the ring's batch backend (``backend="batch"``) the same port
serves B independent streams at once: construct the controller with
``batch=B`` and it hands out :class:`BatchStreamChannel` /
:class:`BatchOutputTap` instead — per-lane queues, per-lane underrun
accounting, per-lane sample streams — while keeping the exact same
per-cycle protocol (``current``/``advance``/``observe``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from repro import word
from repro.errors import HostError


class StreamChannel:
    """One direct host->fabric input port (a synchronous word stream).

    The value returned by :meth:`current` stays constant within a cycle;
    :meth:`advance` (called once per cycle by the data controller) moves to
    the next word.  When the stream runs dry the port presents *idle_value*
    and counts the underrun, so pipeline drain cycles are harmless but
    observable.
    """

    def __init__(self, values: Optional[Iterable[int]] = None,
                 idle_value: int = 0):
        self._queue: Deque[int] = deque()
        self.idle_value = word.check(idle_value, "idle value")
        self.delivered = 0
        self.underruns = 0
        self._dry_seen = False
        if values is not None:
            self.push(values)

    def push(self, values) -> None:
        """Queue one word or an iterable of words for streaming."""
        if isinstance(values, int):
            values = [values]
        for v in values:
            self._queue.append(word.check(v, "stream word"))

    def current(self) -> int:
        """The word presented on the port this cycle.

        The port is level-sensitive: however many agents read it within
        one cycle (datapath, trace observer, metrics), a dry queue counts
        at most one underrun until the next clock edge.
        """
        if not self._queue:
            if not self._dry_seen:
                self._dry_seen = True
                self.underruns += 1
            return self.idle_value
        return self._queue[0]

    def advance(self) -> None:
        """Clock edge: consume the presented word."""
        self._dry_seen = False
        if self._queue:
            self._queue.popleft()
            self.delivered += 1

    def drop_next(self) -> int:
        """Fault model: silently lose the next queued word.

        Unlike :meth:`advance`, the lost word is neither delivered nor
        counted — exactly what a flipped valid-bit on the host link
        looks like.  Returns how many words were dropped (0 when the
        queue was already dry).
        """
        if not self._queue:
            return 0
        self._queue.popleft()
        return 1

    def pending(self) -> int:
        """Words still queued."""
        return len(self._queue)

    @property
    def words_delivered(self) -> int:
        """Total words actually consumed by the fabric (all lanes)."""
        return self.delivered

    def __repr__(self) -> str:
        return (
            f"StreamChannel(pending={len(self._queue)}, "
            f"delivered={self.delivered})"
        )


class BatchStreamChannel:
    """One direct host->fabric port carrying B independent lane streams.

    Per-lane queues share the channel's clock: :meth:`current` presents
    one word per lane (idle value where a lane has run dry, with the
    underrun counted *for that lane only*), :meth:`advance` consumes the
    presented word on every lane that had one.  Push the same stimulus
    to every lane with ``push(values)`` or a lane-specific stream with
    ``push(values, lane=i)``.
    """

    def __init__(self, batch: int, idle_value: int = 0):
        if batch < 1:
            raise HostError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self.idle_value = word.check(idle_value, "idle value")
        self._queues: List[Deque[int]] = [deque() for _ in range(batch)]
        self.delivered = [0] * batch
        self.underruns = [0] * batch
        self._dry_seen = [False] * batch

    def push(self, values, lane: Optional[int] = None) -> None:
        """Queue words on one lane (or broadcast to all when None)."""
        if isinstance(values, int):
            values = [values]
        checked = [word.check(int(v), "stream word") for v in values]
        if lane is None:
            for queue in self._queues:
                queue.extend(checked)
            return
        if not 0 <= lane < self.batch:
            raise HostError(
                f"lane must be 0..{self.batch - 1}, got {lane}"
            )
        self._queues[lane].extend(checked)

    def current(self) -> np.ndarray:
        """The per-lane words presented on the port this cycle.

        Like the scalar port, repeated reads within one cycle count at
        most one underrun per dry lane until the next clock edge.
        """
        out = np.empty(self.batch, dtype=np.int64)
        for lane, queue in enumerate(self._queues):
            if queue:
                out[lane] = queue[0]
            else:
                if not self._dry_seen[lane]:
                    self._dry_seen[lane] = True
                    self.underruns[lane] += 1
                out[lane] = self.idle_value
        return out

    def advance(self) -> None:
        """Clock edge: every non-empty lane consumes its word."""
        for lane, queue in enumerate(self._queues):
            self._dry_seen[lane] = False
            if queue:
                queue.popleft()
                self.delivered[lane] += 1

    def drop_next(self) -> int:
        """Fault model: silently lose the next word on every lane.

        Returns the number of words dropped (lanes already dry lose
        nothing); none are counted as delivered.
        """
        dropped = 0
        for queue in self._queues:
            if queue:
                queue.popleft()
                dropped += 1
        return dropped

    def pending(self) -> int:
        """Words still queued across all lanes."""
        return sum(len(queue) for queue in self._queues)

    def lane_pending(self, lane: int) -> int:
        return len(self._queues[lane])

    @property
    def words_delivered(self) -> int:
        """Total words actually consumed by the fabric (all lanes)."""
        return sum(self.delivered)

    def __repr__(self) -> str:
        return (
            f"BatchStreamChannel(lanes={self.batch}, "
            f"pending={self.pending()}, delivered={self.words_delivered})"
        )


class OutputTap:
    """Samples one Dnode's output register each cycle.

    Args:
        layer, position: which Dnode to observe.
        skip: number of initial cycles to ignore (pipeline fill).
        every: sample period — keep one sample every *every* cycles
            (1 = every cycle).
        limit: stop collecting after this many samples (None = unbounded).
    """

    def __init__(self, layer: int, position: int, skip: int = 0,
                 every: int = 1, limit: Optional[int] = None):
        if skip < 0:
            raise HostError(f"skip must be >= 0, got {skip}")
        if every < 1:
            raise HostError(f"every must be >= 1, got {every}")
        if limit is not None and limit < 0:
            raise HostError(f"limit must be >= 0, got {limit}")
        self.layer = layer
        self.position = position
        self.skip = skip
        self.every = every
        self.limit = limit
        self.samples: List[int] = []
        self._seen = 0

    def observe(self, value: int) -> None:
        """Record this cycle's post-edge output value (if selected)."""
        self._seen += 1
        if self._seen <= self.skip:
            return
        if (self._seen - self.skip - 1) % self.every != 0:
            return
        if self.limit is not None and len(self.samples) >= self.limit:
            return
        self.samples.append(value)

    @property
    def full(self) -> bool:
        """True once *limit* samples are collected."""
        return self.limit is not None and len(self.samples) >= self.limit

    @property
    def sample_count(self) -> int:
        """Total words collected (all lanes)."""
        return len(self.samples)

    def __repr__(self) -> str:
        return (
            f"OutputTap(D{self.layer}.{self.position}, "
            f"samples={len(self.samples)})"
        )


class BatchOutputTap:
    """Samples one Dnode's output register across every lane each cycle.

    Same skip/every/limit schedule as :class:`OutputTap` (all lanes run
    in lockstep, so one schedule serves the whole batch); the collected
    streams are per lane: ``samples[lane]`` / :meth:`lane`.
    """

    def __init__(self, batch: int, layer: int, position: int,
                 skip: int = 0, every: int = 1,
                 limit: Optional[int] = None):
        if batch < 1:
            raise HostError(f"batch must be >= 1, got {batch}")
        if skip < 0:
            raise HostError(f"skip must be >= 0, got {skip}")
        if every < 1:
            raise HostError(f"every must be >= 1, got {every}")
        if limit is not None and limit < 0:
            raise HostError(f"limit must be >= 0, got {limit}")
        self.batch = batch
        self.layer = layer
        self.position = position
        self.skip = skip
        self.every = every
        self.limit = limit
        self.samples: List[List[int]] = [[] for _ in range(batch)]
        self._seen = 0

    def observe(self, values) -> None:
        """Record this cycle's per-lane output values (if selected)."""
        self._seen += 1
        if self._seen <= self.skip:
            return
        if (self._seen - self.skip - 1) % self.every != 0:
            return
        if self.limit is not None and len(self.samples[0]) >= self.limit:
            return
        for lane, value in enumerate(values):
            self.samples[lane].append(int(value))

    def lane(self, lane: int) -> List[int]:
        """One lane's collected sample stream (a copy)."""
        return list(self.samples[lane])

    @property
    def full(self) -> bool:
        """True once *limit* samples are collected (per lane)."""
        return self.limit is not None and len(self.samples[0]) >= self.limit

    @property
    def sample_count(self) -> int:
        """Total words collected (all lanes)."""
        return sum(len(stream) for stream in self.samples)

    def __repr__(self) -> str:
        return (
            f"BatchOutputTap(D{self.layer}.{self.position}, "
            f"lanes={self.batch}, samples={len(self.samples[0])}/lane)"
        )


class DataController:
    """Bank of stream channels and output taps driven once per cycle.

    With ``batch > 1`` (the ring's batch backend) every channel is a
    :class:`BatchStreamChannel` and every tap a :class:`BatchOutputTap`;
    the per-cycle protocol is unchanged — ``host_in`` simply presents a
    per-lane word array and taps collect one stream per lane.
    """

    def __init__(self, batch: int = 1):
        if batch < 1:
            raise HostError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self._channels: Dict[int, object] = {}
        self.taps: List[object] = []

    def channel(self, index: int):
        """The stream channel behind direct-port index (created on demand)."""
        if index < 0:
            raise HostError(f"channel index must be >= 0, got {index}")
        if index not in self._channels:
            if self.batch > 1:
                self._channels[index] = BatchStreamChannel(self.batch)
            else:
                self._channels[index] = StreamChannel()
        return self._channels[index]

    def stream(self, index: int, values, lane: Optional[int] = None):
        """Queue *values* on channel *index* (convenience).

        *lane* targets one lane of a batch channel; with the default
        (None) a batch channel broadcasts the words to every lane.
        """
        ch = self.channel(index)
        if lane is None:
            ch.push(values)
        elif self.batch > 1:
            ch.push(values, lane=lane)
        else:
            raise HostError(
                f"lane={lane} requires a batch data controller"
            )
        return ch

    def add_tap(self, layer: int, position: int, **kwargs):
        """Attach an output tap to a Dnode; returns it for later reading."""
        if self.batch > 1:
            tap = BatchOutputTap(self.batch, layer, position, **kwargs)
        else:
            tap = OutputTap(layer, position, **kwargs)
        self.taps.append(tap)
        return tap

    def host_in(self, index: int) -> int:
        """Resolver handed to :meth:`repro.core.ring.Ring.step`."""
        return self.channel(index).current()

    def bulk_host_in(self, ring):
        """A resolver for whole :meth:`repro.core.ring.Ring.run` chunks.

        Per-cycle servicing resets each channel's dry-latch at every
        clock edge (:meth:`advance`), so a routed dry channel counts one
        underrun per cycle.  A bulk chunk never calls ``advance`` — this
        wrapper watches ``ring.cycles`` instead and clears the latches
        whenever the fabric moves to a new cycle, reproducing the
        per-cycle underrun accounting bit for bit (the same contract
        :meth:`absorb_shard_run` keeps for sharded chunks).
        """
        last = [ring.cycles]

        def host_in(index: int) -> int:
            if ring.cycles != last[0]:
                last[0] = ring.cycles
                for ch in self._channels.values():
                    if isinstance(ch, BatchStreamChannel):
                        ch._dry_seen = [False] * ch.batch
                    else:
                        ch._dry_seen = False
            return self.host_in(index)

        return host_in

    @property
    def idle(self) -> bool:
        """True when per-cycle servicing would be a no-op.

        No taps to sample and no queued stream words to advance — empty
        channels still present their idle value (and count underruns)
        through :meth:`host_in`, which needs no per-cycle bookkeeping.
        """
        return not self.taps and not any(
            ch.pending() for ch in self._channels.values()
        )

    def advance(self) -> None:
        """Clock edge: every channel moves to its next word."""
        for ch in self._channels.values():
            ch.advance()

    def collect(self, ring) -> None:
        """Sample every tap from the post-edge fabric state.

        Batch taps read the per-lane OUT values straight from the ring's
        lane engine (batch or shard); scalar taps read the scalar OUT
        register.
        """
        if self.batch > 1:
            engine = ring._lane_engine()
            for tap in self.taps:
                tap.observe(engine.lane_outs(tap.layer, tap.position))
            return
        for tap in self.taps:
            tap.observe(ring.dnode(tap.layer, tap.position).out)

    def shard_stimulus(self, base_cycle: int):
        """Freeze the queued stream words into a picklable chunk stimulus.

        The sharded backend runs whole chunks inside worker processes,
        where live ``host_in`` callbacks cannot reach; a
        :class:`~repro.core.shardpath.StreamStimulus` carries the queued
        words instead (sliced per shard by the engine), anchored at the
        fabric cycle the chunk starts on.  The live queues are left
        untouched — call :meth:`absorb_shard_run` afterwards to account
        for what the chunk consumed.
        """
        from repro.core.shardpath import StreamStimulus
        channels = {}
        idle = {}
        for index, ch in self._channels.items():
            idle[index] = ch.idle_value
            if isinstance(ch, BatchStreamChannel):
                channels[index] = ("lanes",
                                   [list(queue) for queue in ch._queues])
            else:
                channels[index] = ("all", list(ch._queue))
        return StreamStimulus(base_cycle, channels, idle)

    def absorb_shard_run(self, executed: int, read_channels) -> None:
        """Account for *executed* chunk cycles run off a frozen stimulus.

        Every channel advances once per cycle (words past the queue end
        are simply dry), reproducing exactly what *executed* calls to
        :meth:`advance` would have delivered; channels in
        *read_channels* — the ones the fabric configuration actually
        routes — additionally count one underrun per dry cycle, matching
        the scalar per-cycle accounting bit for bit.
        """
        if executed < 0:
            raise HostError(f"executed must be >= 0, got {executed}")
        read = set(read_channels)
        for index, ch in self._channels.items():
            routed = index in read
            if isinstance(ch, BatchStreamChannel):
                for lane, queue in enumerate(ch._queues):
                    consumed = min(len(queue), executed)
                    for _ in range(consumed):
                        queue.popleft()
                    ch.delivered[lane] += consumed
                    if routed:
                        ch.underruns[lane] += executed - consumed
                    ch._dry_seen[lane] = False
            else:
                consumed = min(len(ch._queue), executed)
                for _ in range(consumed):
                    ch._queue.popleft()
                ch.delivered += consumed
                if routed:
                    ch.underruns += executed - consumed
                ch._dry_seen = False

    def capture_state(self) -> dict:
        """Checkpoint the host side: queued words, counters, tap samples.

        The fabric snapshot (:mod:`repro.core.snapshot`) covers only the
        ring; rollback-replay of a *streamed* run must also rewind the
        stream queues and tap collections, or replay would re-consume
        words that are already gone.  Pure-Python state, deep-copied.
        """
        channels = {}
        for index, ch in self._channels.items():
            if isinstance(ch, BatchStreamChannel):
                channels[index] = {
                    "lanes": [list(queue) for queue in ch._queues],
                    "delivered": list(ch.delivered),
                    "underruns": list(ch.underruns),
                }
            else:
                channels[index] = {
                    "queue": list(ch._queue),
                    "delivered": ch.delivered,
                    "underruns": ch.underruns,
                }
        taps = []
        for tap in self.taps:
            if isinstance(tap, BatchOutputTap):
                taps.append({"samples": [list(s) for s in tap.samples],
                             "seen": tap._seen})
            else:
                taps.append({"samples": list(tap.samples),
                             "seen": tap._seen})
        return {"channels": channels, "taps": taps}

    def restore_state(self, state: dict) -> None:
        """Rewind to a :meth:`capture_state` checkpoint (same topology)."""
        for index, saved in state["channels"].items():
            ch = self.channel(index)
            if isinstance(ch, BatchStreamChannel):
                ch._queues = [deque(lane) for lane in saved["lanes"]]
                ch.delivered = list(saved["delivered"])
                ch.underruns = list(saved["underruns"])
                ch._dry_seen = [False] * ch.batch
            else:
                ch._queue = deque(saved["queue"])
                ch.delivered = saved["delivered"]
                ch.underruns = saved["underruns"]
                ch._dry_seen = False
        if len(state["taps"]) != len(self.taps):
            raise HostError(
                f"checkpoint has {len(state['taps'])} taps, controller "
                f"has {len(self.taps)}")
        for tap, saved in zip(self.taps, state["taps"]):
            if isinstance(tap, BatchOutputTap):
                tap.samples = [list(s) for s in saved["samples"]]
            else:
                tap.samples = list(saved["samples"])
            tap._seen = saved["seen"]

    def total_words_in(self) -> int:
        """Words actually streamed into the fabric so far (all lanes)."""
        return sum(ch.words_delivered for ch in self._channels.values())

    def total_words_out(self) -> int:
        """Samples collected across all taps so far (all lanes)."""
        return sum(tap.sample_count for tap in self.taps)
