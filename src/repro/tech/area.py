"""Area estimation for Dnodes and complete cores (Table 3 / Fig. 7).

The estimator composes the gate/bit inventories of
:mod:`repro.tech.gates` with a technology node's area coefficients.  The
two Table 3 anchors reproduce exactly (the node coefficients were solved
from them); larger rings are genuine model predictions — notably Ring-64
at 0.18 um lands on the paper's 3.4 mm^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.ring import RingGeometry
from repro.tech import gates
from repro.tech.nodes import TechNode, get_node

NodeLike = Union[str, TechNode]


def _resolve(node: NodeLike) -> TechNode:
    return get_node(node) if isinstance(node, str) else node


@dataclass(frozen=True)
class AreaReport:
    """Breakdown of a core's silicon area (mm^2)."""

    node: str
    geometry: RingGeometry
    dnodes_mm2: float
    switches_mm2: float
    controller_mm2: float
    memory_mm2: float
    extra_mm2: float = 0.0

    @property
    def total_mm2(self) -> float:
        return (self.dnodes_mm2 + self.switches_mm2 + self.controller_mm2
                + self.memory_mm2 + self.extra_mm2)

    @property
    def per_dnode_mm2(self) -> float:
        return self.dnodes_mm2 / self.geometry.dnodes

    @property
    def overhead_fraction(self) -> float:
        """Non-Dnode fraction of the core — the scalability metric.

        The paper's claim is that this *shrinks* as rings grow, because
        the controller is shared and the switches scale only with the
        layer count.
        """
        return 1.0 - self.dnodes_mm2 / self.total_mm2

    def __str__(self) -> str:
        return (
            f"Ring-{self.geometry.dnodes} @ {self.node}: "
            f"{self.total_mm2:.2f} mm^2 "
            f"(dnodes {self.dnodes_mm2:.2f}, switches "
            f"{self.switches_mm2:.2f}, controller {self.controller_mm2:.2f}, "
            f"memory {self.memory_mm2:.2f}, extra {self.extra_mm2:.2f})"
        )


def dnode_area_mm2(node: NodeLike) -> float:
    """Silicon area of a single Dnode (Table 3, first column)."""
    tech = _resolve(node)
    return tech.logic_area_um2(gates.dnode_gate_count()) / 1e6


def core_area_mm2(geometry: RingGeometry, node: NodeLike,
                  extra_memory_bits: int = 0,
                  extra_logic_gates: int = 0) -> AreaReport:
    """Full-core area for an arbitrary ring geometry.

    Args:
        geometry: ring shape.
        node: technology node name or object.
        extra_memory_bits: application-specific on-core memory (e.g. the
            wavelet line buffers of Table 2's Ring-16).
        extra_logic_gates: application-specific extra logic.
    """
    tech = _resolve(node)
    dnodes_um2 = tech.logic_area_um2(
        geometry.dnodes * gates.dnode_gate_count()
    )
    switches_um2 = tech.logic_area_um2(
        geometry.layers * gates.switch_gate_count(geometry.width)
    )
    controller_um2 = tech.logic_area_um2(
        gates.CONTROLLER_GATES + gates.DATA_CONTROLLER_GATES
    )
    memory_um2 = tech.memory_area_um2(
        gates.memory_bits(geometry.dnodes, geometry.layers, geometry.width)
    )
    extra_um2 = (tech.memory_area_um2(extra_memory_bits)
                 + tech.logic_area_um2(extra_logic_gates))
    return AreaReport(
        node=tech.name,
        geometry=geometry,
        dnodes_mm2=dnodes_um2 / 1e6,
        switches_mm2=switches_um2 / 1e6,
        controller_mm2=controller_um2 / 1e6,
        memory_mm2=memory_um2 / 1e6,
        extra_mm2=extra_um2 / 1e6,
    )


def ring_area_mm2(dnodes: int, node: NodeLike,
                  width: int = 2,
                  extra_memory_bits: int = 0) -> float:
    """Total core area of a Ring-*dnodes* (convenience wrapper)."""
    report = core_area_mm2(RingGeometry.ring(dnodes, width=width), node,
                           extra_memory_bits=extra_memory_bits)
    return report.total_mm2


def synthesis_table(node_names: Optional[list] = None) -> list:
    """Reproduce Table 3: rows of (node, Dnode mm^2, core mm^2, MHz)."""
    from repro.tech.timing import estimated_frequency_hz

    rows = []
    for name in node_names or ["0.25um", "0.18um"]:
        tech = get_node(name)
        ring8 = core_area_mm2(RingGeometry.ring(8), tech)
        rows.append((
            name,
            dnode_area_mm2(tech),
            ring8.total_mm2,
            estimated_frequency_hz(tech) / 1e6,
        ))
    return rows
