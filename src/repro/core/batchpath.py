"""Vectorized multi-stream execution backend for the ring fabric.

The fast path (:mod:`repro.core.fastpath`) exploits the configuration
being *static between controller writes*; this module exploits a second
invariant: the configuration is also *lane-invariant*.  Control flow —
which microword executes, which writes are staged, how local sequencers
advance, which FIFO pops are requested — is decided entirely by the
configuration, never by data.  So B independent sample streams pushed
through one configuration take exactly the same control path and differ
only in their data words, which makes the whole fabric vectorizable:
every state element grows a trailing *lane* axis of length B and each
per-cycle action becomes one NumPy array operation over all lanes.

:class:`BatchRing` compiles the attached ring's configuration into flat
per-Dnode array kernels (the same eval / shift / commit phase structure
as the fast path) over ``int32`` state arrays:

* ``outs[layer, position, lane]`` — OUT registers,
* ``regs[layer, position, r, lane]`` — register files,
* ``pipes[layer, lane_idx, stage, lane]`` — feedback pipelines, which
  all rotate in lockstep so one shared head index serves every switch,
* per-lane circular-buffer FIFOs (:class:`_BatchFifo`) with per-lane
  underflow and pop accounting.

``int32`` is sufficient headroom: the widest intermediate any opcode
produces is a signed 16x16 product (|x| <= 2^30) plus a 16-bit addend,
or ``SHL``'s ``0xFFFF << 15`` — both comfortably inside 31 bits.

All values are raw 16-bit words exactly as in :mod:`repro.word`; the
vectorized sign reinterpretation is ``(v ^ 0x8000) - 0x8000`` and every
arithmetic result is masked back with ``& 0xFFFF``, so wrap-around
semantics are bit-identical to the scalar ALU (the differential suite in
``tests/core/test_differential.py`` and the signed-overflow audit prove
it).  Per-Dnode statistics stay exact: cycles/instructions/arithmetic
ops/multiplies are lane-invariant and applied in closed form per run,
while FIFO pops and underflows — which depend on per-lane occupancy —
are tracked as per-lane arrays.

Plan lifetime mirrors the fast path: the ring fires its invalidation
hook on every configuration write (Dnode microwords and modes, local
slots/LIMIT, switch routes), the batch kernels are dropped, and the next
``run()`` recompiles them over the *preserved* lane state — mid-run
reconfiguration behaves identically to the scalar engines.

Known divergence (shared with the fast path): inside a cycle aborted by
a strict-FIFO error the partial state differs from the interpreter, and
closed-form instruction counts cover completed cycles only.  Error
messages themselves are identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro import word
from repro.core.dnode import Dnode, DnodeMode, _MULTIPLY_OPS, _OP_COST
from repro.core.isa import (
    ACCUMULATING_OPS,
    Dest,
    Flag,
    MicroWord,
    Opcode,
)
from repro.core.plancache import PlanCache
from repro.core.regfile import NUM_REGISTERS
from repro.core.switch import PortKind, Switch
from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ring import Ring

#: Storage dtype of every lane-indexed state array (see module docstring
#: for the 31-bit headroom argument).
LANE_DTYPE = np.int32

_MASK = word.MASK
_SIGN = word.SIGN_BIT
_MIN_S = word.MIN_SIGNED
_MAX_S = word.MAX_SIGNED
_SHIFT_MASK = word.WIDTH - 1


# ----------------------------------------------------------------------
# Vectorized 16-bit word semantics (shared with the audit test)
# ----------------------------------------------------------------------


def batch_to_signed(v):
    """Reinterpret raw 16-bit words as signed (scalar or ndarray)."""
    return (v ^ _SIGN) - _SIGN


def batch_wrap(v):
    """Wrap any integer value (scalar or ndarray) to a raw 16-bit word."""
    return v & _MASK


def batch_saturate_signed(v):
    """Clamp to INT16 then return the raw two's-complement word."""
    return np.clip(v, _MIN_S, _MAX_S) & _MASK


_BATCH_UNARY = {
    Opcode.MOV: lambda a: a,
    Opcode.NOT: lambda a: (~a) & _MASK,
    Opcode.NEG: lambda a: (-batch_to_signed(a)) & _MASK,
    Opcode.ABS: lambda a: abs(batch_to_signed(a)) & _MASK,
}

_BATCH_BINARY = {
    Opcode.ADD: lambda a, b: (a + b) & _MASK,
    Opcode.SUB: lambda a, b: (a - b) & _MASK,
    Opcode.MUL: lambda a, b:
        (batch_to_signed(a) * batch_to_signed(b)) & _MASK,
    Opcode.MULH: lambda a, b:
        ((batch_to_signed(a) * batch_to_signed(b)) >> word.WIDTH) & _MASK,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: (a << (b & _SHIFT_MASK)) & _MASK,
    Opcode.SHR: lambda a, b: (a & _MASK) >> (b & _SHIFT_MASK),
    Opcode.ASR: lambda a, b:
        (batch_to_signed(a) >> (b & _SHIFT_MASK)) & _MASK,
    Opcode.ABSDIFF: lambda a, b:
        abs(batch_to_signed(a) - batch_to_signed(b)) & _MASK,
    Opcode.MIN: lambda a, b:
        np.where(batch_to_signed(a) <= batch_to_signed(b), a, b),
    Opcode.MAX: lambda a, b:
        np.where(batch_to_signed(a) >= batch_to_signed(b), a, b),
    Opcode.ADDSAT: lambda a, b:
        batch_saturate_signed(batch_to_signed(a) + batch_to_signed(b)),
    Opcode.SUBSAT: lambda a, b:
        batch_saturate_signed(batch_to_signed(a) - batch_to_signed(b)),
    Opcode.CMPEQ: lambda a, b: np.where(a == b, 1, 0),
    Opcode.CMPLT: lambda a, b:
        np.where(batch_to_signed(a) < batch_to_signed(b), 1, 0),
    Opcode.AVG2: lambda a, b:
        ((batch_to_signed(a) + batch_to_signed(b)) >> 1) & _MASK,
}


def batch_execute_op(op: Opcode, a, b=0, acc=0, imm=0):
    """Vectorized mirror of :func:`repro.core.alu.execute_op`.

    Operands are raw 16-bit words, scalar or NumPy integer arrays
    (broadcasting applies); the result is raw words of the broadcast
    shape.  Bit-identity with the scalar ALU over the whole INT16 range
    is asserted by the signed-overflow audit test.
    """
    if op is Opcode.NOP:
        return a & 0
    if op is Opcode.MAC:
        return (batch_to_signed(a) * batch_to_signed(b)
                + batch_to_signed(acc)) & _MASK
    if op is Opcode.MACS:
        return batch_saturate_signed(
            batch_to_signed(a) * batch_to_signed(b) + batch_to_signed(acc))
    if op is Opcode.MADD:
        return (batch_to_signed(a)
                + batch_to_signed(b) * batch_to_signed(imm)) & _MASK
    if op is Opcode.MSUB:
        return (batch_to_signed(a)
                - batch_to_signed(b) * batch_to_signed(imm)) & _MASK
    handler = _BATCH_UNARY.get(op)
    if handler is not None:
        return handler(a)
    handler_b = _BATCH_BINARY.get(op)
    if handler_b is not None:
        return handler_b(a, b)
    raise SimulationError(f"opcode {op!r} has no batch kernel")


# ----------------------------------------------------------------------
# Per-lane FIFOs
# ----------------------------------------------------------------------


class _BatchFifo:
    """One Dnode input FIFO across B lanes (circular buffer per lane)."""

    __slots__ = ("batch", "data", "head", "count", "_lanes")

    def __init__(self, batch: int, capacity: int = 8):
        self.batch = batch
        self.data = np.zeros((capacity, batch), dtype=LANE_DTYPE)
        self.head = np.zeros(batch, dtype=np.int64)
        self.count = np.zeros(batch, dtype=np.int64)
        self._lanes = np.arange(batch)

    @property
    def capacity(self) -> int:
        return self.data.shape[0]

    def _grow(self, needed: int) -> None:
        cap = self.capacity
        new_cap = max(needed, cap * 2)
        new = np.zeros((new_cap, self.batch), dtype=LANE_DTYPE)
        for lane in range(self.batch):
            c = int(self.count[lane])
            if c:
                idx = (int(self.head[lane]) + np.arange(c)) % cap
                new[:c, lane] = self.data[idx, lane]
        self.data = new
        self.head[:] = 0

    def push_lane(self, lane: int, values: List[int]) -> None:
        n = len(values)
        if not n:
            return
        if int(self.count[lane]) + n > self.capacity:
            self._grow(int(self.count.max()) + n)
        idx = (int(self.head[lane]) + int(self.count[lane])
               + np.arange(n)) % self.capacity
        self.data[idx, lane] = values
        self.count[lane] += n

    def push_all(self, values: List[int]) -> None:
        """Append the same words to every lane."""
        n = len(values)
        if not n:
            return
        if int(self.count.max()) + n > self.capacity:
            self._grow(int(self.count.max()) + n)
        arr = np.asarray(values, dtype=LANE_DTYPE)
        idx = (self.head[None, :] + self.count[None, :]
               + np.arange(n)[:, None]) % self.capacity
        self.data[idx, self._lanes[None, :]] = arr[:, None]
        self.count += n

    def peek(self):
        """Head word per lane (0 where empty) plus the empty-lane mask."""
        vals = self.data[self.head, self._lanes]
        empty = self.count == 0
        if empty.any():
            vals = np.where(empty, 0, vals)
        return vals, empty

    def pop(self):
        """Dequeue where non-empty; returns the landed (success) mask."""
        ok = self.count > 0
        self.head += ok
        self.head %= self.capacity
        self.count -= ok
        return ok

    def contents(self, lane: int) -> List[int]:
        c = int(self.count[lane])
        if not c:
            return []
        idx = (int(self.head[lane]) + np.arange(c)) % self.capacity
        return [int(v) for v in self.data[idx, lane]]


# ----------------------------------------------------------------------
# The batch engine
# ----------------------------------------------------------------------


def _pops_of(mw: MicroWord) -> Tuple[int, ...]:
    pops = []
    if mw.flags & Flag.POP_FIFO1:
        pops.append(1)
    if mw.flags & Flag.POP_FIFO2:
        pops.append(2)
    return tuple(pops)


def _copy_into(dst: np.ndarray, src: np.ndarray) -> Callable[[], None]:
    def act(_d=dst, _s=src):
        _d[:] = _s
    return act


class BatchRing:
    """B independent streams advanced through one ring configuration.

    The engine attaches to a fully constructed :class:`Ring`, broadcasts
    its current datapath state across *batch* lanes, and thereafter owns
    the lane state.  ``run(cycles)`` advances every lane together;
    :meth:`store_lane` writes one lane's state back into a scalar ring
    (the attached one by default), which is how the embedded
    ``backend="batch"`` mode keeps the scalar view (observers, metrics,
    taps, ``_state``-style inspection) coherent with lane 0.

    Host reads may return a plain int (broadcast to every lane) or an
    integer array of shape ``(batch,)`` for per-lane streams; per-lane
    FIFO contents are loaded with :meth:`push_fifo`.
    """

    #: Dense lane-array families an external caller (the shard backend)
    #: may supply as pre-allocated buffers, with their expected shapes as
    #: functions of (layers, width, depth, batch).
    ARRAY_SHAPES = {
        "outs": lambda l, w, d, b: (l, w, b),
        "regs": lambda l, w, d, b: (l, w, NUM_REGISTERS, b),
        "pipes": lambda l, w, d, b: (l, w, d, b),
        "underflows": lambda l, w, d, b: (b,),
        "fifo_pops": lambda l, w, d, b: (l, w, b),
    }

    def __init__(self, ring: "Ring", batch: int,
                 arrays: Optional[Dict[str, np.ndarray]] = None):
        if batch < 1:
            raise ConfigurationError(
                f"batch size must be >= 1, got {batch}"
            )
        self.ring = ring
        self.batch = batch
        g = ring.geometry
        layers, width, depth = g.layers, g.width, g.pipeline_depth
        if arrays is not None:
            # Shard-aware lane views: the dense state lives in buffers
            # owned by the caller (shared-memory slices of a wider batch,
            # in the sharded backend), and this engine advances them in
            # place.  The growable FIFO words stay engine-private — they
            # cross process boundaries only at explicit sync points.
            self._check_arrays(arrays, layers, width, depth, batch)
            self.outs = arrays["outs"]
            self.regs = arrays["regs"]
            self.pipes = arrays["pipes"]
            self.lane_underflows = arrays["underflows"]
            pops = arrays["fifo_pops"]
            self.lane_fifo_pops: Dict[Tuple[int, int], np.ndarray] = {
                (l, p): pops[l, p]
                for l in range(layers) for p in range(width)
            }
        else:
            self.outs = np.zeros((layers, width, batch), dtype=LANE_DTYPE)
            self.regs = np.zeros((layers, width, NUM_REGISTERS, batch),
                                 dtype=LANE_DTYPE)
            self.pipes = np.zeros((layers, width, depth, batch),
                                  dtype=LANE_DTYPE)
            self.lane_underflows = np.zeros(batch, dtype=np.int64)
            self.lane_fifo_pops = {
                (l, p): np.zeros(batch, dtype=np.int64)
                for l in range(layers) for p in range(width)
            }
        self._pending = np.zeros((layers, width, batch), dtype=LANE_DTYPE)
        self._head = 0
        self._counters: Dict[Tuple[int, int], List[int]] = {
            (l, p): [0] for l in range(layers) for p in range(width)
        }
        self._fifos: Dict[Tuple[int, int, int], _BatchFifo] = {}
        #: Kernel lifecycle counters (mirror the ring's plan counters).
        self.compiles = 0
        self.invalidations = 0
        self._kernels = None
        self._stat_plan: Tuple = ()
        self._all_stats: Tuple = tuple(dn.stats for dn in ring.all_dnodes())
        #: Engine-owned kernel cache, keyed by the ring's configuration
        #: fingerprint.  Owned (not the ring's cache) because kernels
        #: close over *this* engine's lane arrays and FIFO objects — an
        #: entry must never outlive the engine or survive a resync.
        self.plan_cache = PlanCache(ring.plan_cache.capacity)
        self._detached = False
        ring.add_invalidation_listener(self._on_config_change)
        self.resync()

    @classmethod
    def _check_arrays(cls, arrays: Dict[str, np.ndarray], layers: int,
                      width: int, depth: int, batch: int) -> None:
        """Validate externally supplied lane buffers (shapes and dtypes)."""
        for name, shape_of in cls.ARRAY_SHAPES.items():
            arr = arrays.get(name)
            if arr is None:
                raise ConfigurationError(
                    f"external lane arrays are missing {name!r}"
                )
            expected = shape_of(layers, width, depth, batch)
            if arr.shape != expected:
                raise ConfigurationError(
                    f"external lane array {name!r} has shape {arr.shape}; "
                    f"expected {expected}"
                )
            wanted = np.int64 if name in ("underflows", "fifo_pops") \
                else LANE_DTYPE
            if arr.dtype != wanted:
                raise ConfigurationError(
                    f"external lane array {name!r} has dtype {arr.dtype}; "
                    f"expected {np.dtype(wanted)}"
                )

    # -- lifecycle -----------------------------------------------------

    def detach(self) -> None:
        """Unhook from the ring's invalidation chain (engine retired)."""
        self.ring.remove_invalidation_listener(self._on_config_change)
        self._detached = True

    def _on_config_change(self) -> None:
        if self._kernels is not None:
            self._kernels = None
            self.invalidations += 1
            self.ring.plan_invalidations += 1

    def resync(self) -> None:
        """(Re)load lane state by broadcasting the ring's scalar state."""
        ring = self.ring
        g = ring.geometry
        for l in range(g.layers):
            for p in range(g.width):
                dn = ring._dnodes[l][p]
                self.outs[l, p, :] = dn._out
                for r in range(NUM_REGISTERS):
                    self.regs[l, p, r, :] = dn.regs._values[r]
                self._counters[(l, p)][0] = dn.local._counter
                self.lane_fifo_pops[(l, p)][:] = dn.stats.fifo_pops
        heads = {sw._head for sw in ring._switches}
        if len(heads) != 1:  # pragma: no cover - heads rotate in lockstep
            raise SimulationError(
                "switch pipeline heads diverged; cannot batch"
            )
        self._head = ring._switches[0]._head
        for l, sw in enumerate(ring._switches):
            for j, pipe in enumerate(sw._pipes):
                self.pipes[l, j, :, :] = np.asarray(
                    pipe, dtype=LANE_DTYPE)[:, None]
        self._fifos = {}
        for key, queue in ring._fifos.items():
            fifo = _BatchFifo(self.batch)
            if queue:
                fifo.push_all(list(queue))
            self._fifos[key] = fifo
        self.lane_underflows[:] = ring.fifo_underflows
        self._kernels = None
        # Compiled kernels close over the _BatchFifo objects just
        # replaced above, so every cached entry is stale.
        self.plan_cache.clear()

    def set_plan_cache(self, capacity: int) -> None:
        """Resize (or with 0, disable) the engine's kernel cache."""
        self.plan_cache = PlanCache(capacity)

    # -- lane checkpointing -------------------------------------------

    def capture_lanes(self) -> dict:
        """Freeze the full per-lane state as plain Python data.

        The returned dict is self-contained (no live array views), so a
        :mod:`repro.core.snapshot` checkpoint of a batch ring carries
        every lane, not just the lane-0 scalar mirror.
        """
        return {
            "batch": self.batch,
            "outs": self.outs.tolist(),
            "regs": self.regs.tolist(),
            "pipes": self.pipes.tolist(),
            "head": self._head,
            "counters": {key: cell[0]
                         for key, cell in self._counters.items()},
            # All-empty queues are omitted: they exist only because a
            # queue object was materialized at some point, which is not
            # architectural state and must not affect digests.
            "fifos": {
                key: [fifo.contents(lane) for lane in range(self.batch)]
                for key, fifo in self._fifos.items()
                if int(fifo.count.max()) > 0
            },
            "lane_underflows": self.lane_underflows.tolist(),
            "lane_fifo_pops": {key: counts.tolist()
                               for key, counts in
                               self.lane_fifo_pops.items()},
        }

    def restore_lanes(self, state: dict) -> None:
        """Load a :meth:`capture_lanes` snapshot back into the lanes.

        Replaces every FIFO object (compiled kernels close over them),
        so the kernel table and the engine cache are dropped exactly as
        in :meth:`resync`.
        """
        if state["batch"] != self.batch:
            raise SimulationError(
                f"lane snapshot holds {state['batch']} lanes; engine has "
                f"{self.batch}"
            )
        self.outs[:] = np.asarray(state["outs"], dtype=LANE_DTYPE)
        self.regs[:] = np.asarray(state["regs"], dtype=LANE_DTYPE)
        self.pipes[:] = np.asarray(state["pipes"], dtype=LANE_DTYPE)
        self._head = state["head"]
        for key, value in state["counters"].items():
            self._counters[key][0] = value
        self._fifos = {}
        for key, lanes in state["fifos"].items():
            fifo = _BatchFifo(self.batch)
            for lane, values in enumerate(lanes):
                fifo.push_lane(lane, values)
            self._fifos[key] = fifo
        self.lane_underflows[:] = np.asarray(state["lane_underflows"],
                                             dtype=np.int64)
        for key, counts in state["lane_fifo_pops"].items():
            self.lane_fifo_pops[key][:] = np.asarray(counts,
                                                     dtype=np.int64)
        self._kernels = None
        self.plan_cache.clear()
        # Re-align the scalar mirror (including the pipeline rotation
        # head) with the restored lane 0 — the writeback contract.
        self.store_lane(0)

    # -- lane state access --------------------------------------------

    def lane_outs(self, layer: int, position: int) -> np.ndarray:
        """The OUT register of one Dnode across all lanes (a copy)."""
        self.ring.dnode(layer, position)  # validates the address
        return self.outs[layer, position].copy()

    def lane_regs(self, layer: int, position: int) -> np.ndarray:
        """The register file of one Dnode across all lanes (a copy)."""
        self.ring.dnode(layer, position)
        return self.regs[layer, position].copy()

    def fifo_contents(self, layer: int, position: int, channel: int,
                      lane: int) -> List[int]:
        """One lane's view of a Dnode input FIFO."""
        self._check_lane(lane)
        fifo = self._fifos.get((layer, position, channel))
        return fifo.contents(lane) if fifo is not None else []

    def push_fifo(self, layer: int, position: int, channel: int,
                  values, lane: Optional[int] = None) -> None:
        """Queue words on one lane's FIFO (``lane=None`` = every lane)."""
        self.ring.dnode(layer, position)
        if channel not in (1, 2):
            raise ConfigurationError(
                f"FIFO channel must be 1 or 2, got {channel}"
            )
        if isinstance(values, (int, np.integer)):
            values = [int(values)]
        checked = [word.check(int(v), "FIFO push") for v in values]
        fifo = self._fifo_for((layer, position, channel))
        if lane is None:
            fifo.push_all(checked)
        else:
            self._check_lane(lane)
            fifo.push_lane(lane, checked)

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.batch:
            raise ConfigurationError(
                f"lane must be 0..{self.batch - 1}, got {lane}"
            )

    def _fifo_for(self, key: Tuple[int, int, int]) -> _BatchFifo:
        fifo = self._fifos.get(key)
        if fifo is None:
            fifo = _BatchFifo(self.batch)
            self._fifos[key] = fifo
        return fifo

    # -- execution -----------------------------------------------------

    def run(self, cycles: int, bus: int = 0,
            host_in: Optional[Callable[[int], object]] = None) -> int:
        """Advance every lane by *cycles* fabric clocks.

        ``bus`` is the (scalar) shared bus value; ``host_in(channel)``
        may return a scalar word or a ``(batch,)`` integer array.
        Returns the number of cycles fully executed.
        """
        if self._detached:
            raise SimulationError("batch engine is detached from its ring")
        if cycles < 0:
            raise SimulationError(f"cycle count must be >= 0, got {cycles}")
        word.check(bus, "bus value")
        if self._kernels is None:
            self._adopt_kernels()
        evals, shift, commits = self._kernels
        ring = self.ring
        ring.last_bus = bus
        local_starts = [
            entry[2][0] if entry[0] == "l" else 0
            for entry in self._stat_plan
        ]
        executed = 0
        try:
            for _ in range(cycles):
                for ev in evals:
                    ev(bus, host_in)
                shift()
                for cm in commits:
                    cm()
                ring.cycles += 1
                executed += 1
        finally:
            if executed:
                self._apply_stats(executed, local_starts)
                # Keep the ring's local-slot counters current: a
                # configuration write between runs may reset or clamp
                # them (load_program / set_limit), and the next compile
                # adopts the ring's value as the truth.
                for (l, p), cell in self._counters.items():
                    ring._dnodes[l][p].local._counter = cell[0]
        return executed

    def step(self, bus: int = 0, host_in=None) -> None:
        """Advance every lane by one clock cycle."""
        self.run(1, bus=bus, host_in=host_in)

    def _apply_stats(self, executed: int, local_starts: List[int]) -> None:
        for stats in self._all_stats:
            stats.cycles += executed
        for entry, c0 in zip(self._stat_plan, local_starts):
            if entry[0] == "g":
                _, stats, cost, mul = entry
                stats.instructions += executed
                stats.arithmetic_ops += cost * executed
                if mul:
                    stats.multiplies += executed
            else:
                _, stats, _cell, limit, slot_info = entry
                full, extra = divmod(executed, limit)
                for s, (is_instr, cost, mul) in enumerate(slot_info):
                    if not is_instr:
                        continue
                    count = full + (1 if (s - c0) % limit < extra else 0)
                    if not count:
                        continue
                    stats.instructions += count
                    stats.arithmetic_ops += cost * count
                    if mul:
                        stats.multiplies += count

    # -- state writeback ----------------------------------------------

    def store_lane(self, lane: int = 0,
                   target: Optional["Ring"] = None) -> None:
        """Write one lane's datapath state into a scalar ring.

        With the default target (the attached ring) this is the embedded
        backend's writeback: the scalar structures mirror lane *lane*.
        A foreign *target* must share the ring's geometry; its datapath
        (OUT/registers/pipelines/counters/FIFOs/statistics/cycle count)
        is overwritten, its configuration is left untouched.
        """
        self._check_lane(lane)
        ring = self.ring
        if target is None:
            target = ring
        g = ring.geometry
        if target.geometry != g:
            raise ConfigurationError(
                f"target geometry {target.geometry} != {g}"
            )
        for l in range(g.layers):
            for p in range(g.width):
                src = ring._dnodes[l][p]
                dn = target._dnodes[l][p]
                dn._out = int(self.outs[l, p, lane])
                dn._out_pending = None
                vals = dn.regs._values
                for r in range(NUM_REGISTERS):
                    vals[r] = int(self.regs[l, p, r, lane])
                dn.local._counter = self._counters[(l, p)][0]
                stats, sstats = dn.stats, src.stats
                stats.cycles = sstats.cycles
                stats.instructions = sstats.instructions
                stats.arithmetic_ops = sstats.arithmetic_ops
                stats.multiplies = sstats.multiplies
                stats.fifo_pops = int(self.lane_fifo_pops[(l, p)][lane])
        for l in range(g.layers):
            sw = target._switches[l]
            sw._head = self._head
            for j in range(g.width):
                pipe = sw._pipes[j]
                col = self.pipes[l, j, :, lane]
                for d in range(g.pipeline_depth):
                    pipe[d] = int(col[d])
        for key, fifo in self._fifos.items():
            queue = target.fifo(*key)
            queue.clear()
            queue.extend(fifo.contents(lane))
        target.cycles = ring.cycles
        target.fifo_underflows = int(self.lane_underflows[lane])
        if target is not ring:
            target.last_bus = ring.last_bus

    # -- host reads ----------------------------------------------------

    def _host_word(self, value, channel: int):
        if isinstance(value, (int, np.integer)):
            return word.check(int(value), f"host channel {channel}")
        arr = np.asarray(value)
        if arr.shape != (self.batch,):
            raise SimulationError(
                f"host channel {channel} batch read must have shape "
                f"({self.batch},), got {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValueError(
                f"host channel {channel} must be 16-bit raw words, "
                f"got dtype {arr.dtype}"
            )
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) > _MASK):
            raise ValueError(
                f"host channel {channel} must be 16-bit raw words"
            )
        return arr.astype(LANE_DTYPE, copy=False)

    # -- compilation ---------------------------------------------------

    def _adopt_counters(self) -> None:
        """Adopt the ring's local-slot counters into the lane cells.

        Configuration writes since the last compile may have reset them
        (load_program) or clamped them under a shrunken LIMIT
        (set_limit), and those side effects happen ring-side only.  Must
        run on every kernel (re)adoption, cached or freshly compiled.
        """
        ring = self.ring
        for (l, p), cell in self._counters.items():
            cell[0] = ring._dnodes[l][p].local._counter

    def _adopt_kernels(self) -> None:
        """Install kernels for the current configuration: cache, else
        compile (and cache the result)."""
        cache = self.plan_cache
        if not cache.capacity:
            self._compile()
            return
        key = ("batch", self.ring.config_fingerprint())
        entry = cache.get(key)
        if entry is not None:
            self._kernels, self._stat_plan = entry
            self._adopt_counters()
            return
        self._compile()
        cache.put(key, (self._kernels, self._stat_plan))

    def _compile(self) -> None:
        ring = self.ring
        g = ring.geometry
        self._adopt_counters()
        evals = []
        commits = []
        stat_plan = []
        for l in range(g.layers):
            sw = ring._switches[l]
            lu = ring.upstream_layer(l)
            for p in range(g.width):
                dn = ring._dnodes[l][p]
                ev, cm, stat = self._compile_dnode(dn, sw, l, p, lu)
                if ev is not None:
                    evals.append(ev)
                if cm is not None:
                    commits.append(cm)
                if stat is not None:
                    stat_plan.append(stat)
        up_perm = np.array([ring.upstream_layer(k)
                            for k in range(g.layers)])
        depth = g.pipeline_depth
        pipes, outs = self.pipes, self.outs

        def shift(_self=self, _pipes=pipes, _outs=outs, _perm=up_perm,
                  _d=depth):
            h = (_self._head - 1) % _d
            _self._head = h
            _pipes[:, :, h, :] = _outs[_perm]

        self._kernels = (tuple(evals), shift, tuple(commits))
        self._stat_plan = tuple(stat_plan)
        self.compiles += 1
        ring.plan_compiles += 1

    def _rp_getter(self, sw: Switch, layer: int, stage: int, lane: int):
        if not (1 <= stage <= sw.pipeline_depth and 1 <= lane <= sw.width):
            # Out-of-range taps raise the interpreter's exact error.
            return (lambda bus, host_in, _s=sw, _st=stage, _ln=lane:
                    _s.rp_read(_st, _ln)), True
        pipe = self.pipes[layer, lane - 1]
        offset = stage - 1
        depth = sw.pipeline_depth
        return (lambda bus, host_in, _p=pipe, _self=self, _o=offset,
                _d=depth: _p[(_self._head + _o) % _d]), False

    def _fifo_peek_getter(self, layer: int, pos: int, channel: int):
        fifo = self._fifo_for((layer, pos, channel))
        ring = self.ring
        underflows = self.lane_underflows

        def peek(bus, host_in, _f=fifo, _r=ring, _u=underflows, _l=layer,
                 _p=pos, _c=channel):
            vals, empty = _f.peek()
            if empty.any():
                if _r.strict_fifos:
                    raise SimulationError(
                        f"D{_l}.{_p} read empty FIFO{_c} at cycle "
                        f"{_r.cycles}"
                    )
                _u += empty
            return vals

        return peek

    def _compile_ports(self, sw: Switch, layer: int, pos: int,
                       up_layer: int):
        """Mirror of the fast path's port resolution, over lane arrays."""
        getters = {}
        eagers = []
        cell = [0, 0]
        for port in (1, 2):
            src = sw.config.source_for(pos, port)
            kind = src.kind
            if kind is PortKind.ZERO:
                getters[port] = lambda bus, host_in: 0
            elif kind is PortKind.UP:
                view = self.outs[up_layer, src.index]
                getters[port] = lambda bus, host_in, _v=view: _v
            elif kind is PortKind.RP:
                getter, eager = self._rp_getter(sw, layer, src.index,
                                                src.lane)
                getters[port] = getter
                if eager:
                    eagers.append(getter)
            elif kind is PortKind.BUS:
                getters[port] = lambda bus, host_in: bus
            elif kind is PortKind.HOST:
                slot = port - 1
                channel = src.index

                def fetch(bus, host_in, _sw=sw, _pos=pos, _port=port,
                          _ch=channel, _cell=cell, _slot=slot, _self=self):
                    if host_in is None:
                        raise SimulationError(
                            f"switch {_sw.index} routes port {_port} of "
                            f"position {_pos} to host channel {_ch}, but "
                            f"no host reader was supplied"
                        )
                    _cell[_slot] = _self._host_word(host_in(_ch), _ch)

                eagers.append(fetch)
                getters[port] = (
                    lambda bus, host_in, _cell=cell, _slot=slot:
                    _cell[_slot])
            else:  # pragma: no cover - exhaustive over PortKind
                raise SimulationError(f"unhandled port source {src!r}")
        return getters, eagers

    def _operand_getter(self, layer: int, pos: int, sw: Switch,
                        mw: MicroWord, src, port_getters):
        from repro.core.isa import Source
        if src <= Source.R3:
            view = self.regs[layer, pos, int(src)]
            return lambda bus, host_in, _v=view: _v
        if src is Source.IN1:
            return port_getters[1]
        if src is Source.IN2:
            return port_getters[2]
        if src is Source.FIFO1:
            return self._fifo_peek_getter(layer, pos, 1)
        if src is Source.FIFO2:
            return self._fifo_peek_getter(layer, pos, 2)
        if src is Source.BUS:
            return lambda bus, host_in: bus
        if src is Source.IMM:
            return lambda bus, host_in, _v=mw.imm: _v
        if src is Source.SELF:
            view = self.outs[layer, pos]
            return lambda bus, host_in, _v=view: _v
        if src is Source.ZERO:
            return lambda bus, host_in: 0
        if src.is_feedback:
            getter, _ = self._rp_getter(sw, layer, src.feedback_stage,
                                        src.feedback_lane)
            return getter
        raise SimulationError(f"unhandled source {src!r}")

    def _compile_compute(self, layer: int, pos: int, mw: MicroWord,
                         get_a, get_b):
        op = mw.op
        if op in ACCUMULATING_OPS:
            acc = self.regs[layer, pos, int(mw.dst)]
            if op is Opcode.MAC:
                return lambda bus, host_in, _ga=get_a, _gb=get_b, _acc=acc: \
                    (batch_to_signed(_ga(bus, host_in))
                     * batch_to_signed(_gb(bus, host_in))
                     + batch_to_signed(_acc)) & _MASK
            return lambda bus, host_in, _ga=get_a, _gb=get_b, _acc=acc: \
                batch_saturate_signed(
                    batch_to_signed(_ga(bus, host_in))
                    * batch_to_signed(_gb(bus, host_in))
                    + batch_to_signed(_acc))
        if op is Opcode.MADD or op is Opcode.MSUB:
            coeff = word.to_signed(mw.imm)
            if op is Opcode.MADD:
                return lambda bus, host_in, _ga=get_a, _gb=get_b, _c=coeff: \
                    (batch_to_signed(_ga(bus, host_in))
                     + batch_to_signed(_gb(bus, host_in)) * _c) & _MASK
            return lambda bus, host_in, _ga=get_a, _gb=get_b, _c=coeff: \
                (batch_to_signed(_ga(bus, host_in))
                 - batch_to_signed(_gb(bus, host_in)) * _c) & _MASK
        if mw.is_binary:
            fn = _BATCH_BINARY.get(op)
            if fn is None:
                raise SimulationError(f"opcode {op!r} has no batch kernel")
            return lambda bus, host_in, _f=fn, _ga=get_a, _gb=get_b: \
                _f(_ga(bus, host_in), _gb(bus, host_in))
        fn = _BATCH_UNARY.get(op)
        if fn is None:
            raise SimulationError(f"opcode {op!r} has no batch kernel")
        return lambda bus, host_in, _f=fn, _ga=get_a: _f(_ga(bus, host_in))

    def _compile_body(self, layer: int, pos: int, sw: Switch,
                      mw: MicroWord, port_getters):
        """Evaluate-phase kernel of one microword (None for NOP).

        The result is materialized into the Dnode's pending buffer at
        eval time, so commits can run in any order (exactly the
        master-slave two-phase semantics of the scalar engines).
        """
        if mw.op is Opcode.NOP:
            return None
        get_a = self._operand_getter(layer, pos, sw, mw, mw.src_a,
                                     port_getters)
        get_b = None
        if mw.is_binary:
            get_b = self._operand_getter(layer, pos, sw, mw, mw.src_b,
                                         port_getters)
        compute = self._compile_compute(layer, pos, mw, get_a, get_b)
        pend = self._pending[layer, pos]

        def body(bus, host_in, _c=compute, _pend=pend):
            _pend[:] = _c(bus, host_in)

        return body

    def _pop_thunk(self, layer: int, pos: int, channel: int):
        fifo = self._fifo_for((layer, pos, channel))
        pops = self.lane_fifo_pops[(layer, pos)]
        ring = self.ring
        underflows = self.lane_underflows

        def pop(_f=fifo, _pops=pops, _r=ring, _u=underflows, _l=layer,
                _p=pos, _c=channel):
            empty = _f.count == 0
            if empty.any():
                if _r.strict_fifos:
                    raise SimulationError(
                        f"D{_l}.{_p} popped empty FIFO{_c} at cycle "
                        f"{_r.cycles}"
                    )
                _u += empty
            _pops += _f.pop()

        return pop

    def _word_commit_actions(self, layer: int, pos: int, mw: MicroWord):
        acts = []
        if mw.op is not Opcode.NOP:
            pend = self._pending[layer, pos]
            if mw.dst.is_register:
                acts.append(_copy_into(self.regs[layer, pos, int(mw.dst)],
                                       pend))
            if mw.dst is Dest.OUT or mw.flags & Flag.WRITE_OUT:
                acts.append(_copy_into(self.outs[layer, pos], pend))
        for channel in _pops_of(mw):
            acts.append(self._pop_thunk(layer, pos, channel))
        return acts

    def _compile_dnode(self, dn: Dnode, sw: Switch, layer: int, pos: int,
                       up_layer: int):
        port_getters, eagers = self._compile_ports(sw, layer, pos,
                                                   up_layer)
        if dn.mode is DnodeMode.LOCAL:
            limit = dn.local.limit
            words = dn.local.slots()[:limit]
            cell = self._counters[(layer, pos)]
            bodies = [self._compile_body(layer, pos, sw, mw, port_getters)
                      for mw in words]
            core = None
            if any(body is not None for body in bodies):
                slot_bodies = tuple(bodies)

                def core(bus, host_in, _cell=cell, _b=slot_bodies):
                    body = _b[_cell[0]]
                    if body is not None:
                        body(bus, host_in)

            per_slot = [tuple(self._word_commit_actions(layer, pos, mw))
                        for mw in words]
            if any(per_slot):
                table = tuple(per_slot)

                def commit(_cell=cell, _t=table, _m=limit):
                    c = _cell[0]
                    _cell[0] = (c + 1) % _m
                    for act in _t[c]:
                        act()
            else:
                def commit(_cell=cell, _m=limit):
                    _cell[0] = (_cell[0] + 1) % _m
            slot_info = tuple(
                (mw.op is not Opcode.NOP, _OP_COST.get(mw.op, 1),
                 mw.op in _MULTIPLY_OPS)
                for mw in words
            )
            stat = ("l", dn.stats, cell, limit, slot_info)
        else:
            mw = dn.global_word
            core = self._compile_body(layer, pos, sw, mw, port_getters)
            acts = self._word_commit_actions(layer, pos, mw)
            if not acts:
                commit = None
            elif len(acts) == 1:
                commit = acts[0]
            else:
                acts = tuple(acts)

                def commit(_a=acts):
                    for act in _a:
                        act()
            if mw.op is Opcode.NOP:
                stat = None
            else:
                stat = ("g", dn.stats, _OP_COST.get(mw.op, 1),
                        mw.op in _MULTIPLY_OPS)
        ev = self._wrap_eagers(eagers, core)
        return ev, commit, stat

    @staticmethod
    def _wrap_eagers(eagers, core):
        if not eagers:
            return core
        if core is None and len(eagers) == 1:
            return eagers[0]
        fetches = tuple(eagers)
        if core is None:
            def ev(bus, host_in, _f=fetches):
                for fetch in _f:
                    fetch(bus, host_in)
            return ev

        def ev(bus, host_in, _f=fetches, _core=core):
            for fetch in _f:
                fetch(bus, host_in)
            _core(bus, host_in)
        return ev

    def __repr__(self) -> str:
        g = self.ring.geometry
        return (
            f"BatchRing(Ring-{g.dnodes} x {self.batch} lanes, "
            f"cycle={self.ring.cycles})"
        )


__all__ = [
    "BatchRing",
    "LANE_DTYPE",
    "batch_execute_op",
    "batch_to_signed",
    "batch_wrap",
    "batch_saturate_signed",
]
