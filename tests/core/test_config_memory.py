"""Tests for the configuration layer (ConfigMemory / ConfigPlane)."""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.errors import ConfigurationError


def mw(imm=0):
    return MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=imm)


class TestWrites:
    def test_write_microword(self, ring8):
        ring8.config.write_microword(1, 1, mw(5))
        assert ring8.dnode(1, 1).global_word == mw(5)

    def test_write_mode(self, ring8):
        ring8.config.write_mode(0, 0, DnodeMode.LOCAL)
        assert ring8.dnode(0, 0).mode is DnodeMode.LOCAL

    def test_write_local_slot_and_limit(self, ring8):
        ring8.config.write_local_slot(0, 0, 2, mw(9))
        ring8.config.write_local_limit(0, 0, 3)
        dn = ring8.dnode(0, 0)
        assert dn.local.slots()[2] == mw(9)
        assert dn.local.limit == 3

    def test_write_local_program(self, ring8):
        ring8.config.write_local_program(0, 0, [mw(1), mw(2)])
        assert ring8.dnode(0, 0).local.limit == 2

    def test_write_switch_route(self, ring8):
        ring8.config.write_switch_route(2, 1, 2, PortSource.up(0))
        assert ring8.switch(2).config.source_for(1, 2) == PortSource.up(0)

    def test_addresses_validated(self, ring8):
        with pytest.raises(ConfigurationError):
            ring8.config.write_microword(9, 0, mw())

    def test_write_counter(self, ring8):
        before = ring8.config.writes
        ring8.config.write_microword(0, 0, mw())
        ring8.config.write_mode(0, 0, DnodeMode.LOCAL)
        assert ring8.config.writes == before + 2


class TestPlanes:
    def test_capture_apply_roundtrip(self, ring8):
        cfg = ring8.config
        cfg.write_microword(0, 0, mw(1))
        cfg.write_mode(1, 0, DnodeMode.LOCAL)
        cfg.write_local_program(1, 0, [mw(2), mw(3)])
        cfg.write_switch_route(0, 0, 1, PortSource.host(2))
        plane = cfg.capture_plane()

        # scramble everything
        cfg.write_microword(0, 0, mw(9))
        cfg.write_mode(1, 0, DnodeMode.GLOBAL)
        cfg.write_switch_route(0, 0, 1, PortSource.zero())

        cfg.apply_plane(plane)
        assert ring8.dnode(0, 0).global_word == mw(1)
        assert ring8.dnode(1, 0).mode is DnodeMode.LOCAL
        assert ring8.dnode(1, 0).local.slots()[1] == mw(3)
        assert ring8.switch(0).config.source_for(0, 1) == PortSource.host(2)

    def test_partial_plane_only_touches_listed(self, ring8):
        from repro.core.config_memory import ConfigPlane

        ring8.config.write_microword(0, 0, mw(1))
        ring8.config.write_microword(0, 1, mw(2))
        plane = ConfigPlane(microwords={(0, 0): mw(7)})
        ring8.config.apply_plane(plane)
        assert ring8.dnode(0, 0).global_word == mw(7)
        assert ring8.dnode(0, 1).global_word == mw(2)

    def test_apply_type_checked(self, ring8):
        with pytest.raises(ConfigurationError):
            ring8.config.apply_plane({"not": "a plane"})

    def test_plane_counts_as_one_write_burst(self, ring8):
        plane = ring8.config.capture_plane()
        before = ring8.config.writes
        ring8.config.apply_plane(plane)
        assert ring8.config.writes == before + 1

    def test_captured_plane_covers_whole_fabric(self, ring8):
        plane = ring8.config.capture_plane()
        geometry = ring8.geometry
        assert len(plane.microwords) == geometry.dnodes
        assert len(plane.modes) == geometry.dnodes
        assert len(plane.switch_routes) == geometry.layers * \
            geometry.width * 2
