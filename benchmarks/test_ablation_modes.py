"""Ablation A1 — multi-level reconfiguration (global vs local mode).

The paper's central scalability mechanism: in global mode every active
Dnode needs one configuration word per cycle from the RISC controller
(whose issue rate is 1 word/cycle), so the controller saturates at one
busy Dnode; in local mode the per-Dnode sequencers remove that traffic
entirely.  This ablation measures configuration words per computed
sample as the ring grows, quantifying why "a 256 Dnodes version ...
would require a prohibitive, disproportioned RISC configuration
controller" without local mode.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.controller.core import RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source, encode
from repro.core.ring import make_ring
from repro.host.system import RingSystem

ABSDIFF = MicroWord(Opcode.ABSDIFF, Source.FIFO1, Source.FIFO2, Dest.R1,
                    flags=Flag.POP_FIFO1 | Flag.POP_FIFO2)
ACCUM = MicroWord(Opcode.ADD, Source.R0, Source.R1, Dest.R0)
PAIRS_PER_DNODE = 16


def _load_data(ring, dnodes):
    for i in range(dnodes):
        layer, pos = divmod(i, 2)
        ring.push_fifo(layer, pos, 1, [100 + i] * PAIRS_PER_DNODE)
        ring.push_fifo(layer, pos, 2, [3] * PAIRS_PER_DNODE)


def run_local(dnodes: int):
    """All Dnodes in local mode: zero steady-state config traffic."""
    ring = make_ring(dnodes)
    _load_data(ring, dnodes)
    for i in range(dnodes):
        layer, pos = divmod(i, 2)
        ring.config.write_local_program(layer, pos, [ABSDIFF, ACCUM])
        ring.config.write_mode(layer, pos, DnodeMode.LOCAL)
    preload = ring.config.writes
    ring.run(2 * PAIRS_PER_DNODE)
    samples = dnodes * PAIRS_PER_DNODE
    steady_writes = ring.config.writes - preload
    return ring, steady_writes, samples, ring.cycles


def run_global(dnodes: int):
    """Controller-sequenced: one CFGDI per Dnode per function change.

    The controller can only issue one configuration word per cycle, so
    the fabric must be time-sliced: each Dnode alternates its word every
    ``dnodes`` cycles and computes at 1/dnodes of the local-mode rate.
    """
    ring = make_ring(dnodes)
    _load_data(ring, dnodes)
    rom = [encode(ABSDIFF), encode(ACCUM), encode(MicroWord())]
    # Time-sliced schedule: activate Dnode i for its absdiff and accum
    # cycles, then park it on a NOP so it executes each word exactly once.
    program = []
    for _ in range(PAIRS_PER_DNODE):
        for i in range(dnodes):
            program.append(Instruction(ROp.CFGDI, dnode=i, cfg=0))
            program.append(Instruction(ROp.CFGDI, dnode=i, cfg=1))
            program.append(Instruction(ROp.CFGDI, dnode=i, cfg=2))
    program.append(Instruction(ROp.HALT))
    system = RingSystem(ring, RiscController(program, cfg_rom=rom))
    system.run_until_halt(max_cycles=2_000_000)
    samples = dnodes * PAIRS_PER_DNODE
    return (ring, system.controller.state.config_commands, samples,
            system.cycles)


def _expected_sum():
    return sum(abs(100 + 0 - 3) for _ in range(PAIRS_PER_DNODE))


def test_ablation_local_mode(benchmark):
    ring, writes, samples, cycles = benchmark(run_local, 16)
    assert writes == 0
    assert ring.dnode(0, 0).regs.read(0) == _expected_sum()


def test_ablation_global_mode(benchmark):
    ring, writes, samples, cycles = benchmark(run_global, 8)
    assert ring.dnode(0, 0).regs.read(0) == _expected_sum()
    assert writes >= 3 * samples / 2  # >= one config word per sample


def test_ablation_shape():
    """Config words/sample: 0 in local mode, >=1 in global mode; and
    global-mode throughput collapses with ring size."""
    rows = []
    for dnodes in (8, 16):
        _, lw, ls, lc = run_local(dnodes)
        _, gw, gs, gc = run_global(dnodes)
        rows.append([f"Ring-{dnodes}",
                     lw / ls, lc / ls,
                     gw / gs, gc / gs])
        assert lw == 0
        assert gw / gs >= 1.0
        # local-mode cycles per sample are constant; global grows ~N
        assert gc / gs > (lc / ls) * dnodes * 0.9
    emit(render_table(
        ["fabric", "local cfg/sample", "local cyc/sample",
         "global cfg/sample", "global cyc/sample"],
        rows, title="A1 (ablation) — configuration traffic by mode"))
