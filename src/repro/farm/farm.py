"""RingFarm: the asyncio multi-tenant serving front door.

The paper's dynamic-reconfiguration story at serving scale: many tenants
time-multiplex a pool of ring-owning workers, and tenants whose jobs
share a configuration fingerprint share *compiled plans*.  The farm's
scheduling primitive is therefore the fingerprint, not the tenant:

* **fingerprint-affinity routing** — the first job with a given
  :meth:`~repro.core.ring.Ring.config_fingerprint` picks the
  least-loaded worker and pins the fingerprint there; every later job
  with the same fabric lands on that worker's warm
  :class:`~repro.core.plancache.PlanCache` (``routing="random"`` is the
  cold baseline the benchmark compares against);
* **bounded queues + backpressure** — each worker has one bounded
  :class:`asyncio.Queue`; a full queue rejects with
  :class:`FarmRejected` carrying a ``retry_after`` estimate (an EMA of
  recent job service times times the queue depth) — the farm never
  buffers unboundedly;
* **per-tenant quotas** — at most ``tenant_quota`` jobs per tenant may
  be queued or running at once, so one tenant cannot occupy every slot;
* **drain and migration** — :meth:`RingFarm.drain` stops intake and
  waits for queues to empty; ``submit(job, migrate_at=cycle)`` pauses
  the job at that cycle via a
  :class:`~repro.robustness.checkpoint.SystemCheckpoint` and resumes it
  on the next worker, bit-identically (the farm differential property).

Workers run as processes by default (``use_processes=False`` keeps them
inline for tests and 1-core hosts); blocking worker I/O is pushed off
the event loop with ``asyncio.to_thread``.
"""

from __future__ import annotations

import asyncio
import random
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import Metric, MetricsSnapshot
from repro.core.ring import Ring, RingGeometry
from repro.errors import ConfigurationError, SimulationError
from repro.farm.job import FarmJob, FarmResult
from repro.farm.worker import FarmWorker

#: Seed for the ``routing="random"`` cold baseline.
DEFAULT_SEED = 2002


class FarmRejected(SimulationError):
    """Backpressure signal: the farm cannot take this job right now.

    ``retry_after`` is the suggested client backoff in seconds, derived
    from the farm's service-time EMA and current queue depth.
    """

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"{reason} (retry after {retry_after:.3f}s)")
        self.reason = reason
        self.retry_after = retry_after


class RingFarm:
    """A pool of ring-owning workers behind one async submit door."""

    ROUTING = ("affinity", "random")

    def __init__(self, workers: int = 2, queue_depth: int = 16,
                 tenant_quota: int = 8, plan_cache: int = 8,
                 use_processes: bool = True, routing: str = "affinity",
                 seed: int = DEFAULT_SEED):
        if workers < 1:
            raise ConfigurationError(
                f"farm needs >= 1 worker, got {workers}")
        if queue_depth < 1:
            raise ConfigurationError(
                f"queue depth must be >= 1, got {queue_depth}")
        if tenant_quota < 1:
            raise ConfigurationError(
                f"tenant quota must be >= 1, got {tenant_quota}")
        if routing not in self.ROUTING:
            raise ConfigurationError(
                f"unknown routing {routing!r}; expected one of "
                f"{self.ROUTING}")
        self.queue_depth = queue_depth
        self.tenant_quota = tenant_quota
        self.routing = routing
        self.workers: List[FarmWorker] = [
            FarmWorker(i, plan_cache=plan_cache,
                       use_processes=use_processes)
            for i in range(workers)
        ]
        self._random = random.Random(seed)
        self._affinity: Dict[tuple, int] = {}
        # One scalar builder ring per fabric shape, used only to turn a
        # job's plane into its configuration fingerprint on submit.
        self._builders: Dict[Tuple[int, int], Ring] = {}
        self._queues: Optional[List[asyncio.Queue]] = None
        self._dispatchers: List[asyncio.Task] = []
        self._draining = False
        self._closed = False
        #: Serving counters (the ``farm_*`` metric families).
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_rejected = 0
        self.jobs_aborted = 0
        self.jobs_migrated = 0
        self.warm_jobs = 0
        self.plan_hits = 0
        self.plan_compiles = 0
        self.tenant_jobs: Dict[str, int] = {}
        self.tenant_cycles: Dict[str, int] = {}
        self._tenant_active: Dict[str, int] = {}
        # Service-time EMA seeding retry-after estimates; starts at a
        # plausible small-job cost so the first rejection is not zero.
        self._ema_seconds = 0.02

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Create the queues and dispatcher tasks (idempotent)."""
        if self._queues is not None:
            return
        self._queues = [asyncio.Queue(maxsize=self.queue_depth)
                        for _ in self.workers]
        self._dispatchers = [
            asyncio.get_running_loop().create_task(self._dispatch(i))
            for i in range(len(self.workers))
        ]

    async def drain(self) -> None:
        """Stop intake and wait until every queued job has finished."""
        self._draining = True
        if self._queues is not None:
            await asyncio.gather(*(q.join() for q in self._queues))

    async def close(self) -> None:
        """Drain, stop the dispatchers, and shut every worker down."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        for worker in self.workers:
            worker.close()

    async def __aenter__(self) -> "RingFarm":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- routing -------------------------------------------------------

    def fingerprint_of(self, job: FarmJob) -> tuple:
        """The configuration fingerprint *job*'s plane resolves to."""
        key = (job.layers, job.width)
        builder = self._builders.get(key)
        if builder is None:
            builder = Ring(RingGeometry(layers=job.layers,
                                        width=job.width),
                           plan_cache=0)
            self._builders[key] = builder
        builder.config.apply_plane(job.plane)
        return (key, builder.config_fingerprint())

    def _queue_load(self, index: int) -> int:
        return self._queues[index].qsize()

    def _pick_worker(self, fingerprint: tuple) -> int:
        if self.routing == "random":
            return self._random.randrange(len(self.workers))
        index = self._affinity.get(fingerprint)
        if index is None:
            index = min(range(len(self.workers)), key=self._queue_load)
            self._affinity[fingerprint] = index
        return index

    def _retry_after(self, queued: int) -> float:
        return round(self._ema_seconds * (queued + 1), 6)

    # -- submission ----------------------------------------------------

    async def submit(self, job: FarmJob,
                     migrate_at: Optional[int] = None) -> FarmResult:
        """Run *job* on the farm; resolves to its :class:`FarmResult`.

        Raises :class:`FarmRejected` (with ``retry_after``) when the
        target worker's queue is full, the tenant is over quota, or the
        farm is draining — the bounded-buffering contract.  With
        ``migrate_at`` the job pauses at that cycle and resumes on the
        next worker (live migration; used by drain/rebalance paths and
        the differential suite).
        """
        job.validate()
        if self._closed:
            raise SimulationError("farm is closed")
        await self.start()
        if self._draining:
            self.jobs_rejected += 1
            raise FarmRejected("farm is draining",
                               self._retry_after(sum(
                                   q.qsize() for q in self._queues)))
        active = self._tenant_active.get(job.tenant, 0)
        if active >= self.tenant_quota:
            self.jobs_rejected += 1
            raise FarmRejected(
                f"tenant {job.tenant!r} over quota "
                f"({active}/{self.tenant_quota} jobs in flight)",
                self._retry_after(active))
        index = self._pick_worker(self.fingerprint_of(job))
        queue = self._queues[index]
        future = asyncio.get_running_loop().create_future()
        try:
            queue.put_nowait((job, migrate_at, future))
        except asyncio.QueueFull:
            self.jobs_rejected += 1
            raise FarmRejected(
                f"worker {index} queue full "
                f"({queue.qsize()}/{self.queue_depth})",
                self._retry_after(queue.qsize()))
        self.jobs_submitted += 1
        self._tenant_active[job.tenant] = active + 1
        try:
            return await future
        finally:
            self._tenant_active[job.tenant] -= 1

    async def submit_graph(self, tenant: str, graph, streams,
                           autotune: bool = True, job_id: str = "",
                           **autotune_opts):
        """Submit a :class:`~repro.compiler.graph.DataflowGraph` directly.

        The compiler autopilot turns *graph* into its best-known mapping
        (``autotune=False`` takes the default ``compile_graph`` emission
        instead), the farm runs it like any compiled-plan job, and the
        tap streams come back latency-aligned per graph output node —
        comparable 1:1 against ``graph.evaluate(streams)``.  A repeat
        submission of the same graph hits the autotuner's memo cache, so
        the search cost is paid once per (graph, fabric) pair.

        Returns ``(FarmResult, outputs)`` where *outputs* maps graph
        output-node index -> signed samples.
        """
        from repro import word
        from repro.compiler.autotune import autotune_graph
        from repro.compiler.codegen import compile_graph

        if not isinstance(streams, dict):
            streams = {0: list(streams)}
        length = max((len(v) for v in streams.values()), default=0)
        if autotune:
            program = autotune_graph(graph, **autotune_opts).program
        else:
            program = compile_graph(graph)
        builder = Ring(program.geometry, plan_cache=0)
        program.configure(builder)
        plane = builder.config.capture_plane()

        # Farm taps cannot skip pipeline fill, so over-collect by each
        # output's fill depth and slice the fill samples off afterwards.
        tap_nodes = []
        for graph_index, phys_index in program.placement.outputs:
            if any(graph_index == seen for seen, _ in tap_nodes):
                continue
            tap_nodes.append((graph_index,
                              program.placement.phys[phys_index]))
        job = FarmJob(
            tenant=tenant,
            layers=program.geometry.layers,
            width=program.geometry.width,
            plane=plane,
            cycles=length + program.latency,
            streams={ch: [word.from_signed(int(v)) for v in samples]
                     for ch, samples in streams.items()},
            taps=[(p.level - 1, p.lane, length + p.level - 1)
                  for _, p in tap_nodes],
            job_id=job_id,
        )
        result = await self.submit(job)
        outputs = {
            graph_index: [word.to_signed(v)
                          for v in stream[p.level - 1:]]
            for (graph_index, p), stream in zip(tap_nodes, result.taps)
        }
        return result, outputs

    # -- dispatch ------------------------------------------------------

    async def _dispatch(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            job, migrate_at, future = await queue.get()
            try:
                result = await self._run_job(index, job, migrate_at)
                if not future.cancelled():
                    future.set_result(result)
            except Exception as exc:
                if not future.cancelled():
                    future.set_exception(exc)
            finally:
                queue.task_done()

    async def _run_job(self, index: int, job: FarmJob,
                       migrate_at: Optional[int]) -> FarmResult:
        worker = self.workers[index]
        began = perf_counter()
        if migrate_at is not None and 0 < migrate_at < job.cycles:
            out = await asyncio.to_thread(worker.execute, job,
                                          migrate_at)
            if not out["done"]:
                # Live migration: resume the checkpoint on the next
                # worker (with one worker, that is a pause/resume on the
                # same ring — still a full checkpoint round trip).
                target = self.workers[(index + 1) % len(self.workers)]
                out = await asyncio.to_thread(
                    target.execute, job, None, out["state"])
                self.jobs_migrated += 1
        else:
            out = await asyncio.to_thread(worker.execute, job)
        result: FarmResult = out["result"]
        elapsed = perf_counter() - began
        self._ema_seconds += 0.25 * (elapsed - self._ema_seconds)
        self.jobs_completed += 1
        self.tenant_jobs[job.tenant] = \
            self.tenant_jobs.get(job.tenant, 0) + 1
        self.tenant_cycles[job.tenant] = \
            self.tenant_cycles.get(job.tenant, 0) + result.cycles_run
        self.plan_hits += result.plan_hits
        self.plan_compiles += result.plan_compiles
        if result.warm:
            self.warm_jobs += 1
        if result.aborted is not None:
            self.jobs_aborted += 1
        return result

    # -- telemetry -----------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """``farm_*`` metric families on the standard metrics surface.

        Same :class:`~repro.analysis.metrics.MetricsSnapshot` container
        and Prometheus/JSON exporters as the fabric counters, so serving
        dashboards scrape one format.  Tenant names are user-supplied —
        the exporter's label escaping is what keeps a hostile tenant
        name from corrupting the scrape.
        """
        completed = self.jobs_completed
        scalar = [
            ("farm_workers", "gauge",
             "Worker pool slots.", len(self.workers)),
            ("farm_worker_processes", "gauge",
             "Pool slots backed by a live worker process (the rest run "
             "inline).",
             sum(1 for w in self.workers if w.using_process)),
            ("farm_jobs_submitted_total", "counter",
             "Jobs accepted into a worker queue.", self.jobs_submitted),
            ("farm_jobs_completed_total", "counter",
             "Jobs finished (including aborted runs).", completed),
            ("farm_jobs_rejected_total", "counter",
             "Jobs rejected by backpressure, quota, or drain.",
             self.jobs_rejected),
            ("farm_jobs_aborted_total", "counter",
             "Completed jobs that ended in a strict-FIFO abort.",
             self.jobs_aborted),
            ("farm_jobs_migrated_total", "counter",
             "Jobs live-migrated between workers mid-run.",
             self.jobs_migrated),
            ("farm_worker_restarts_total", "counter",
             "Worker processes respawned after dying mid-run.",
             sum(w.restarts for w in self.workers)),
            ("farm_plan_hits_total", "counter",
             "Plan-cache hits accumulated by farm jobs.",
             self.plan_hits),
            ("farm_plan_compiles_total", "counter",
             "Plans compiled on behalf of farm jobs.",
             self.plan_compiles),
            ("farm_plan_warm_ratio", "gauge",
             "Fraction of completed jobs served entirely from cached "
             "plans.",
             (self.warm_jobs / completed) if completed else 0.0),
        ]
        metrics = [Metric(name, kind, help_, (((), float(value)),))
                   for name, kind, help_, value in scalar]
        depth = tuple(
            ((("worker", str(i)),),
             float(self._queues[i].qsize() if self._queues else 0))
            for i in range(len(self.workers))
        )
        metrics.append(Metric(
            "farm_queue_depth", "gauge",
            "Jobs currently queued per worker.", depth))
        metrics.append(Metric(
            "farm_worker_jobs_total", "counter",
            "Jobs executed per worker.",
            tuple(((("worker", str(w.index)),), float(w.jobs_done))
                  for w in self.workers)))
        if self.tenant_jobs:
            metrics.append(Metric(
                "farm_tenant_jobs_total", "counter",
                "Jobs completed per tenant.",
                tuple(((("tenant", tenant),), float(count))
                      for tenant, count
                      in sorted(self.tenant_jobs.items()))))
            metrics.append(Metric(
                "farm_tenant_cycles_total", "counter",
                "Fabric cycles executed per tenant.",
                tuple(((("tenant", tenant),), float(count))
                      for tenant, count
                      in sorted(self.tenant_cycles.items()))))
        return MetricsSnapshot(metrics)

    def __repr__(self) -> str:
        mode = sum(1 for w in self.workers if w.using_process)
        return (f"RingFarm({len(self.workers)} workers "
                f"({mode} processes), routing={self.routing}, "
                f"completed={self.jobs_completed})")


__all__ = ["FarmRejected", "RingFarm"]
