"""Plain-text table rendering for benchmark harnesses and examples.

Every benchmark prints the table/figure it reproduces in the same shape
the paper reports it; this module is the one place that formats those
tables.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ReproError


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 float_format: str = "{:.2f}") -> str:
    """Render a fixed-width text table.

    Floats are formatted with *float_format*; everything else with
    ``str``.  Column widths adapt to content.
    """
    if not headers:
        raise ReproError("table needs at least one column")
    formatted: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        formatted.append([
            float_format.format(cell) if isinstance(cell, float)
            else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in formatted:
        out.append(line(row))
    return "\n".join(out)
