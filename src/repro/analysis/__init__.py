"""Analysis helpers: raw-power arithmetic and report rendering.

* :mod:`repro.analysis.mips` — the §5.1 comparative numbers (peak MIPS,
  sustained rates measured from simulator statistics, bandwidth
  ceilings);
* :mod:`repro.analysis.report` — plain-text table rendering shared by
  the benchmark harnesses and examples.
"""

from repro.analysis.mips import (
    ring_peak_mips,
    ring_peak_mops,
    measured_mips,
    theoretical_bandwidth_bytes_per_s,
    comparative_summary,
)
from repro.analysis.report import render_table
from repro.analysis.trace import Probe, SignalTrace, parse_vcd, write_vcd

__all__ = [
    "Probe",
    "SignalTrace",
    "parse_vcd",
    "write_vcd",
    "ring_peak_mips",
    "ring_peak_mops",
    "measured_mips",
    "theoretical_bandwidth_bytes_per_s",
    "comparative_summary",
    "render_table",
]
