"""Recursive ("RII") filters on the Systolic Ring.

First-order section ``y[n] = b0*x[n] + a1*y[n-1]`` mapped on two Dnodes at
1 sample/cycle:

* layer 0: ``mul out, in1, #b0`` (host stream in);
* layer 1: ``madd out, in1, self, #a1`` — the recursion closes through
  the Dnode's own output register (``SELF``), the tightest feedback path
  the architecture offers; no routing resources are consumed.

The :func:`mac_accumulate` kernel is the paper's headline MAC
macro-operator: one local-mode Dnode performing a multiply-accumulate
every cycle ("its instruction set features for instance a MAC operation
using this resources"), i.e. a 1-MAC/cycle dot product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.host.system import RingSystem
from repro.kernels.taps import tap_lane0


@dataclass
class IirResult:
    """Outcome of a fabric IIR run."""

    outputs: List[int]
    cycles: int
    dnodes_used: int


def build_first_order_iir(b0: int, a1: int,
                          ring: Optional[Ring] = None) -> RingSystem:
    """Configure *ring* as a first-order recursive filter."""
    if ring is None:
        ring = Ring(RingGeometry(layers=2, width=2))
    cfg = ring.config
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    cfg.write_microword(0, 0, MicroWord(
        Opcode.MUL, Source.IN1, Source.IMM, Dest.OUT,
        imm=word.from_signed(int(b0))))
    cfg.write_switch_route(1, 0, 1, PortSource.up(0))
    cfg.write_microword(1, 0, MicroWord(
        Opcode.MADD, Source.IN1, Source.SELF, Dest.OUT,
        imm=word.from_signed(int(a1))))
    return RingSystem(ring)


def first_order_iir(signal: Sequence[int], b0: int, a1: int,
                    ring: Optional[Ring] = None) -> IirResult:
    """Run ``y[n] = b0*x[n] + a1*y[n-1]`` on the fabric.

    Bit-exact against
    :func:`repro.kernels.reference.iir_first_order` (shift=0) while the
    outputs stay within 16 bits.
    """
    system = build_first_order_iir(b0, a1, ring)
    samples = [word.from_signed(int(v)) for v in signal]
    system.data.stream(0, samples)
    tap = system.data.add_tap(1, 0, skip=1, limit=len(samples))
    system.run(len(samples) + 2)
    return IirResult(
        outputs=[word.to_signed(v) for v in tap_lane0(tap)],
        cycles=system.cycles,
        dnodes_used=2,
    )


def biquad_program(b0: int, a1: int, a2: int) -> List[MicroWord]:
    """Local-mode loop for ``y[n] = b0*x[n] + a1*y[n-1] + a2*y[n-2]``.

    One Dnode, five slots, one sample per 5 cycles (the resource-shared
    "RII" of the conclusion).  Register allocation: R1 = y[n-1],
    R2 = y[n-2]; the recursion state never leaves the Dnode::

        0: mul  r0, fifo1, #b0  [pop1]
        1: madd r0, r0, r1, #a1
        2: madd r0, r0, r2, #a2 [wout]   ; y[n] published
        3: mov  r2, r1
        4: mov  r1, r0
    """
    return [
        MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.R0,
                  flags=Flag.POP_FIFO1, imm=word.from_signed(int(b0))),
        MicroWord(Opcode.MADD, Source.R0, Source.R1, Dest.R0,
                  imm=word.from_signed(int(a1))),
        MicroWord(Opcode.MADD, Source.R0, Source.R2, Dest.R0,
                  flags=Flag.WRITE_OUT, imm=word.from_signed(int(a2))),
        MicroWord(Opcode.MOV, Source.R1, dst=Dest.R2),
        MicroWord(Opcode.MOV, Source.R0, dst=Dest.R1),
    ]


def biquad(signal: Sequence[int], b0: int, a1: int, a2: int,
           ring: Optional[Ring] = None,
           layer: int = 0, position: int = 0) -> IirResult:
    """Run a second-order recursive section on one local-mode Dnode.

    Bit-exact against :func:`reference_biquad` while outputs stay within
    16 bits.
    """
    if ring is None:
        ring = Ring(RingGeometry(layers=2, width=2))
    program = biquad_program(b0, a1, a2)
    ring.config.write_local_program(layer, position, program)
    ring.config.write_mode(layer, position, DnodeMode.LOCAL)
    ring.push_fifo(layer, position, 1,
                   [word.from_signed(int(v)) for v in signal])
    dn = ring.dnode(layer, position)
    outputs: List[int] = []
    for _ in signal:
        for slot in range(len(program)):
            ring.step()
            if slot == 2:  # y[n] committed by the publish slot
                outputs.append(word.to_signed(dn.out))
    return IirResult(outputs=outputs, cycles=ring.cycles, dnodes_used=1)


def reference_biquad(signal: Sequence[int], b0: int, a1: int,
                     a2: int) -> List[int]:
    """Golden model of the all-pole biquad (plain integer arithmetic)."""
    y1 = y2 = 0
    out = []
    for v in signal:
        y = b0 * int(v) + a1 * y1 + a2 * y2
        out.append(y)
        y2, y1 = y1, y
    return out


def mac_accumulate(a: Sequence[int], b: Sequence[int],
                   ring: Optional[Ring] = None,
                   layer: int = 0, position: int = 0) -> int:
    """Dot product via the single-cycle MAC: one Dnode, one MAC per cycle.

    The two operand vectors stream through the Dnode's FIFOs; the
    accumulator lives in R0 and is published to OUT every cycle via the
    WRITE_OUT flag, so the host can watch the running sum.
    """
    if len(a) != len(b):
        raise ValueError(f"vector lengths differ: {len(a)} vs {len(b)}")
    if ring is None:
        ring = Ring(RingGeometry(layers=2, width=2))
    program = [MicroWord(
        Opcode.MAC, Source.FIFO1, Source.FIFO2, Dest.R0,
        flags=Flag.POP_FIFO1 | Flag.POP_FIFO2 | Flag.WRITE_OUT)]
    ring.config.write_local_program(layer, position, program)
    ring.config.write_mode(layer, position, DnodeMode.LOCAL)
    ring.push_fifo(layer, position, 1,
                   [word.from_signed(int(v)) for v in a])
    ring.push_fifo(layer, position, 2,
                   [word.from_signed(int(v)) for v in b])
    ring.run(len(a))
    return word.to_signed(ring.dnode(layer, position).out)
