"""Directed golden tests for the DSP scenario library.

Every recipe runs against its NumPy/integer golden model from
:mod:`repro.kernels.reference` on the default engine, plus placement
variants (mode x lane order) where the mapping space is meaningful, plus
regression tests for the lane-indexing drift the library fix closed
(``tap.samples`` on batch rings returned lane *arrays*, not samples).
"""

from __future__ import annotations

import pytest

from repro.compiler.codegen import compile_graph
from repro.compiler.graph import CompileError
from repro.core.ring import Ring, RingGeometry
from repro.kernels import reference
from repro.kernels.complex_ops import cmag_fabric, cmul_fabric
from repro.kernels.cordic import (compile_cordic, cordic_rotate_fabric,
                                  cordic_vector_fabric)
from repro.kernels.effects import build_echo, chorus_fabric, echo_fabric
from repro.kernels.fifo_emulation import delay_line
from repro.kernels.fir import spatial_fir
from repro.kernels.iir import first_order_iir
from repro.kernels.mixer import (MIXER4_GAINS, mixer_fabric, mixer_graph,
                                 vca_fabric)
from repro.kernels.nco import (NCO_LATENCY, cordic_backend_graph,
                               nco_fabric, shaper_graph)
from repro.kernels.resampler import RESAMPLERS
from repro.kernels.ringmac import (MAX_CLIENTS, build_ringmac,
                                   ringmac_fabric, ringmac_program)
from repro.kernels.scenarios import run_effects_chain, run_synth_voice


def _signal(length, spread=60, stride=7):
    return [((stride * i + 11) % (2 * spread)) - spread
            for i in range(length)]


#: Placement variants exercised on the compiled recipes: every mode, and
#: the lane orders that reshuffle delayed-operand placements.
VARIANTS = [
    {"mode": "global"},
    {"mode": "local"},
    {"mode": "hybrid"},
    {"lane_order": "reverse"},
    {"lane_order": "delay-first"},
]


class TestCordic:
    def test_rotate_matches_reference(self):
        xs = _signal(16, spread=9000, stride=997)
        ys = _signal(16, spread=9000, stride=641)
        zs = _signal(16, spread=8192, stride=1303)
        result = cordic_rotate_fabric(xs, ys, zs, iterations=6)
        want = [reference.cordic_rotate(x, y, z, 6)
                for x, y, z in zip(xs, ys, zs)]
        assert (result.x, result.y, result.z) == \
            tuple(map(list, zip(*want)))

    def test_vector_matches_reference(self):
        xs = _signal(16, spread=9000, stride=733)
        ys = _signal(16, spread=9000, stride=389)
        result = cordic_vector_fabric(xs, ys, iterations=6)
        want = [reference.cordic_vector(x, y, 0, 6)
                for x, y in zip(xs, ys)]
        assert (result.x, result.y, result.z) == \
            tuple(map(list, zip(*want)))

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: "-".join(
                                 f"{k}={val}" for k, val in v.items()))
    def test_rotate_placement_variants(self, variant):
        xs, ys, zs = ([5000, -4000, 300], [-2500, 1200, -700],
                      [9000, -12000, 4096])
        result = cordic_rotate_fabric(xs, ys, zs, iterations=4, **variant)
        want = [reference.cordic_rotate(x, y, z, 4)
                for x, y, z in zip(xs, ys, zs)]
        assert (result.x, result.y, result.z) == \
            tuple(map(list, zip(*want)))

    def test_compile_cordic_modes(self):
        assert compile_cordic("rotate", 4).dnodes_used > 0
        assert compile_cordic("vector", 4).dnodes_used > 0
        with pytest.raises(CompileError):
            compile_cordic("spin", 4)
        with pytest.raises(CompileError):
            compile_cordic("rotate", 0)


class TestNco:
    def test_matches_reference(self):
        result = nco_fabric(1873, 48)
        assert result.samples == reference.nco(1873, 48)

    def test_phase_seed(self):
        result = nco_fabric(500, 32, phase=12345)
        assert result.samples == reference.nco(500, 32, phase=12345)

    def test_shaper_graph_matches_reference(self):
        phases = _signal(24, spread=30000, stride=2741)
        graph = shaper_graph()
        outs = compile_graph(graph).run(phases)
        assert outs[graph.outputs[0]] == \
            [reference.sine_shape(p) for p in phases]

    def test_cordic_backend_matches_reference(self):
        graph = cordic_backend_graph(iterations=6, amplitude=12000)
        phases = [(1873 * (n + 1)) % 65536 - 32768 for n in range(12)]
        outs = compile_graph(graph).run({0: phases})
        cos_out, sin_out = (outs[node] for node in graph.outputs[:2])
        want = [reference.cordic_rotate(12000, 0, p, 6) for p in phases]
        assert cos_out == [w[0] for w in want]
        assert sin_out == [w[1] for w in want]


class TestResamplers:
    REFERENCES = {
        "up2": reference.upsample2,
        "down2": reference.downsample2,
        "up3": reference.upsample3,
        "down3": reference.downsample3,
    }

    @pytest.mark.parametrize("factor", sorted(RESAMPLERS))
    def test_matches_reference(self, factor):
        signal = _signal(30, spread=800, stride=311)
        _, fabric = RESAMPLERS[factor]
        assert fabric(signal).samples == self.REFERENCES[factor](signal)

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: "-".join(
                                 f"{k}={val}" for k, val in v.items()))
    def test_up2_placement_variants(self, variant):
        signal = _signal(20, spread=500, stride=173)
        _, fabric = RESAMPLERS["up2"]
        assert fabric(signal, **variant).samples == \
            reference.upsample2(signal)

    def test_up2_dc_exact_after_warmup(self):
        # The half-band odd phase needs x[n-3]: exact from sample 3 on.
        up = RESAMPLERS["up2"][1]([100] * 16).samples
        assert all(v == 100 for v in up[6:])


class TestGainStaging:
    def test_vca_matches_reference(self):
        signal = _signal(24, spread=2000, stride=577)
        gains = [(1500 * i) % 32768 for i in range(24)]
        assert vca_fabric(signal, gains).samples == \
            reference.vca(signal, gains)

    def test_mixer_matches_reference(self):
        signals = [_signal(20, spread=1500, stride=7 + 4 * i)
                   for i in range(4)]
        assert mixer_fabric(signals).samples == \
            reference.mix(signals, MIXER4_GAINS)

    def test_mixer_arity_checks(self):
        with pytest.raises(CompileError):
            mixer_graph(())
        with pytest.raises(CompileError):
            mixer_fabric([[1, 2]], gains=(100, 200))


class TestEffects:
    @pytest.mark.parametrize("depth", [1, 3, 4, 6, 9])
    def test_chorus_matches_reference(self, depth):
        signal = _signal(30)
        assert chorus_fabric(signal, depth).samples == \
            reference.chorus(signal, depth)

    @pytest.mark.parametrize("layers,gain", [(3, 30000), (8, 22000),
                                             (13, -18000)])
    def test_echo_matches_reference(self, layers, gain):
        signal = _signal(4 * layers, spread=4000)
        assert echo_fabric(signal, gain, layers=layers).samples == \
            reference.echo(signal, layers, gain)

    def test_echo_validation(self):
        with pytest.raises(ValueError):
            build_echo(1000, layers=2)
        with pytest.raises(ValueError):
            build_echo(1000, ring=Ring(RingGeometry(4, 2)), lane=5)


class TestComplexOps:
    def test_cmul_matches_reference(self):
        a, b = _signal(20, spread=121), _signal(20, spread=144, stride=11)
        c, d = _signal(20, spread=99, stride=13), \
            _signal(20, spread=130, stride=17)
        result = cmul_fabric(a, b, c, d)
        want_re, want_im = reference.complex_multiply(a, b, c, d)
        assert result.re == want_re
        assert result.im == want_im

    def test_cmag_matches_reference(self):
        re = _signal(20, spread=5000, stride=433)
        im = _signal(20, spread=4000, stride=391)
        result = cmag_fabric(re, im)
        assert result.re == reference.complex_magnitude(re, im)
        assert result.im == []


class TestRingMac:
    @pytest.mark.parametrize("clients", [1, 2, 3, 4])
    def test_matches_reference(self, clients):
        a = [_signal(10, spread=40, stride=5 + c) for c in range(clients)]
        b = [_signal(10, spread=30, stride=3 + 2 * c)
             for c in range(clients)]
        result = ringmac_fabric(a, b)
        assert result.partials == reference.ringmac(a, b)
        assert result.totals == [p[-1] for p in reference.ringmac(a, b)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ringmac_program(MAX_CLIENTS + 1)
        with pytest.raises(ValueError):
            ringmac_fabric([[1]], [[1], [2]])
        with pytest.raises(ValueError):
            ringmac_fabric([[1, 2]], [[1]])
        with pytest.raises(ValueError):
            build_ringmac(2, ring=Ring(RingGeometry(2, 2)),
                          server_layer=0)


class TestScenarioValidation:
    def test_chunk_must_divide(self):
        with pytest.raises(ValueError):
            run_synth_voice([0] * 33, chunk=32)
        with pytest.raises(ValueError):
            run_effects_chain([0] * 10, chunk=0)

    def test_geometry_checked(self):
        with pytest.raises(ValueError):
            run_synth_voice([0] * 32, chunk=32,
                            ring=Ring(RingGeometry(5, 2)))
        with pytest.raises(ValueError):
            run_effects_chain([0] * 32, chunk=32,
                              ring=Ring(RingGeometry(10, 1)))


class TestLaneIndexingRegressions:
    """The batch/shard tap drift: ``tap.samples`` on a lane backend is a
    list of lane arrays.  The kernels now read lane 0 explicitly; these
    pin the fixed helpers bit-identical to their scalar-engine runs."""

    SIGNAL = [((3 * n + 5) % 40) - 20 for n in range(24)]

    def _batch_ring(self, layers, width=2):
        return Ring(RingGeometry(layers, width), backend="batch",
                    batch_size=2)

    def test_spatial_fir_batch(self):
        taps = [1, 2, 3, 4]
        want = spatial_fir(taps, self.SIGNAL).outputs
        got = spatial_fir(taps, self.SIGNAL,
                          ring=self._batch_ring(4)).outputs
        assert got == want

    def test_first_order_iir_batch(self):
        want = first_order_iir(self.SIGNAL, 3, 2).outputs
        got = first_order_iir(self.SIGNAL, 3, 2,
                              ring=self._batch_ring(2)).outputs
        assert got == want

    def test_delay_line_batch(self):
        want = delay_line(self.SIGNAL, 5)
        got = delay_line(self.SIGNAL, 5, ring=self._batch_ring(8))
        assert got == want
        assert got == ([0] * 5 + self.SIGNAL)[:len(self.SIGNAL)]

    def test_compiled_program_run_batch(self):
        graph = mixer_graph((1000, 2000))
        program = compile_graph(graph)
        streams = {0: self.SIGNAL, 1: self.SIGNAL[::-1]}
        want = program.run(streams)
        ring = Ring(program.geometry, backend="batch", batch_size=2)
        assert program.run(streams, ring=ring) == want
