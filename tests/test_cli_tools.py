"""Tests for the `python -m repro.tools` command-line interface."""

import pytest

from repro.tools.__main__ import main

SRC = """
.ring boot
dnode 0.0 global
    add out, in1, #5
switch 0
    route 0.1 <- host0
.risc
    waiti 8
    halt
"""


SRC_UNCONTROLLED = """
.ring boot
dnode 0.0 global
    add out, in1, #5
switch 0
    route 0.1 <- host0
"""


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text(SRC)
    return path


@pytest.fixture
def ring_obj(tmp_path, capsys):
    path = tmp_path / "ring.asm"
    path.write_text(SRC_UNCONTROLLED)
    main(["asm", str(path)])
    capsys.readouterr()
    return path.with_suffix(".obj")


class TestAsmCommand:
    def test_assembles_to_default_output(self, asm_file, capsys):
        assert main(["asm", str(asm_file), "--layers", "4"]) == 0
        obj_path = asm_file.with_suffix(".obj")
        assert obj_path.exists()
        assert "2 instructions" in capsys.readouterr().out

    def test_explicit_output(self, asm_file, tmp_path):
        out = tmp_path / "custom.obj"
        assert main(["asm", str(asm_file), "-o", str(out)]) == 0
        assert out.exists()

    def test_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.asm"
        bad.write_text(".risc\nfrobnicate r1\n")
        assert main(["asm", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestDisCommand:
    def test_listing_printed(self, asm_file, capsys):
        main(["asm", str(asm_file)])
        capsys.readouterr()
        assert main(["dis", str(asm_file.with_suffix(".obj"))]) == 0
        out = capsys.readouterr().out
        assert "add out, in1, #5" in out
        assert "waiti 8" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["dis", str(tmp_path / "nope.obj")]) == 1


class TestRunCommand:
    def test_streams_and_taps(self, asm_file, capsys):
        main(["asm", str(asm_file)])
        capsys.readouterr()
        code = main(["run", str(asm_file.with_suffix(".obj")),
                     "--stream", "0:10,20,30", "--tap", "0.0:4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tap 0.0:4: [15, 25, 35" in out

    def test_fixed_cycle_run(self, asm_file, capsys):
        main(["asm", str(asm_file)])
        capsys.readouterr()
        code = main(["run", str(asm_file.with_suffix(".obj")),
                     "--stream", "0:1", "--tap", "0.0:1",
                     "--cycles", "3"])
        assert code == 0
        assert "ran 3 cycles" in capsys.readouterr().out

    def test_metrics_export_json(self, asm_file, tmp_path, capsys):
        import json
        main(["asm", str(asm_file)])
        capsys.readouterr()
        metrics = tmp_path / "run.json"
        code = main(["run", str(asm_file.with_suffix(".obj")),
                     "--stream", "0:1", "--tap", "0.0:1",
                     "--cycles", "5", "--metrics", str(metrics)])
        assert code == 0
        assert f"wrote metrics to {metrics}" in capsys.readouterr().out
        data = json.loads(metrics.read_text())
        assert data["ring_cycles_total"] == 5
        assert "controller_cycles_total" in data

    def test_metrics_export_prometheus(self, asm_file, tmp_path, capsys):
        main(["asm", str(asm_file)])
        capsys.readouterr()
        metrics = tmp_path / "run.prom"
        code = main(["run", str(asm_file.with_suffix(".obj")),
                     "--stream", "0:1", "--tap", "0.0:1",
                     "--cycles", "5", "--metrics", str(metrics),
                     "--metrics-format", "prom"])
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE repro_ring_cycles_total counter" in text
        assert "repro_ring_cycles_total 5" in text


class TestRunPlanCacheFlags:
    def test_plan_cache_and_macro_step_applied(self, ring_obj, capsys):
        import json
        metrics = ring_obj.parent / "cache.json"
        code = main(["run", str(ring_obj),
                     "--plan-cache", "4", "--macro-step", "8",
                     "--cycles", "200", "--metrics", str(metrics)])
        assert code == 0
        assert "ran 200 cycles" in capsys.readouterr().out
        data = json.loads(metrics.read_text())
        assert data["macro_step_cycles_total"] > 0
        assert "plan_cache_hits_total" in data
        assert "plan_cache_misses_total" in data
        assert "plan_cache_evictions_total" in data

    def test_plan_cache_zero_disables_caching(self, ring_obj, capsys):
        import json
        metrics = ring_obj.parent / "nocache.json"
        code = main(["run", str(ring_obj),
                     "--plan-cache", "0",
                     "--cycles", "50", "--metrics", str(metrics)])
        assert code == 0
        capsys.readouterr()
        data = json.loads(metrics.read_text())
        assert data["plan_cache_hits_total"] == 0
        assert data["plan_cache_misses_total"] == 0

    def test_plan_cache_rejects_negative(self, ring_obj, capsys):
        code = main(["run", str(ring_obj), "--plan-cache", "-1",
                     "--cycles", "5"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_macro_step_rejects_negative(self, ring_obj, capsys):
        code = main(["run", str(ring_obj), "--macro-step", "-3",
                     "--cycles", "5"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRunBatchBackend:
    def test_batch_run_prints_per_lane_taps(self, ring_obj, capsys):
        code = main(["run", str(ring_obj),
                     "--backend", "batch", "--batch-size", "4",
                     "--stream", "0:10,20,30", "--tap", "0.0:3",
                     "--cycles", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ran 6 cycles x 4 lanes (24 lane-cycles)" in out
        # The stream is broadcast, so every lane computes the same result.
        for lane in range(4):
            assert f"tap 0.0:3 lane {lane}: [15, 25, 35]" in out

    def test_batch_matches_scalar_backends(self, ring_obj, capsys):
        def tap_lines(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return [line.partition(": ")[2]
                    for line in out.splitlines() if "tap" in line]

        scalar = tap_lines(["run", str(ring_obj), "--stream", "0:7,8,9",
                            "--tap", "0.0:3", "--cycles", "5"])
        batch = tap_lines(["run", str(ring_obj), "--stream", "0:7,8,9",
                           "--tap", "0.0:3", "--cycles", "5",
                           "--backend", "batch", "--batch-size", "2"])
        assert batch == scalar * 2

    def test_batch_metrics_exported(self, ring_obj, tmp_path, capsys):
        import json
        metrics = tmp_path / "batch.json"
        code = main(["run", str(ring_obj),
                     "--backend", "batch", "--batch-size", "3",
                     "--stream", "0:1,2", "--tap", "0.0:2",
                     "--cycles", "4", "--metrics", str(metrics)])
        assert code == 0
        capsys.readouterr()
        data = json.loads(metrics.read_text())
        assert data["batch_lanes"] == 3
        assert data["batch_plan_compiles_total"] == 1
        assert "lane=2" in data["batch_lane_fifo_underflows_total"]

    def test_batch_rejects_controller_program(self, asm_file, capsys):
        main(["asm", str(asm_file)])
        capsys.readouterr()
        code = main(["run", str(asm_file.with_suffix(".obj")),
                     "--backend", "batch", "--batch-size", "2"])
        assert code == 1
        assert "uncontrolled" in capsys.readouterr().err

    def test_batch_size_requires_batch_backend(self, ring_obj, capsys):
        code = main(["run", str(ring_obj), "--batch-size", "2"])
        assert code == 1
        assert "--backend batch" in capsys.readouterr().err


SRC_FIFO = """
.ring boot
dnode 0.0 global
    mov out, fifo1 [pop1]
"""


class TestRunExitCodes:
    """Satellite: aborted runs must not exit 0 (CI keys off the code)."""

    @pytest.fixture
    def fifo_obj(self, tmp_path, capsys):
        path = tmp_path / "fifo.asm"
        path.write_text(SRC_FIFO)
        main(["asm", str(path)])
        capsys.readouterr()
        return path.with_suffix(".obj")

    def test_strict_fifo_abort_exits_2_with_cycle_on_stderr(
            self, fifo_obj, capsys):
        code = main(["run", str(fifo_obj), "--strict-fifos",
                     "--cycles", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("abort: ")
        assert "FIFO1" in err and "cycle" in err

    def test_underflow_without_strict_still_exits_0(self, fifo_obj,
                                                    capsys):
        assert main(["run", str(fifo_obj), "--cycles", "4"]) == 0
        assert "abort" not in capsys.readouterr().err

    def test_inject_recovery_success_exits_0(self, ring_obj, capsys):
        code = main(["run", str(ring_obj), "--cycles", "16",
                     "--inject", "seu", "--checkpoint-every", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected:" in out
        assert "RECOVERY FAILED" not in out

    def test_inject_recovery_failure_exits_1(self, ring_obj, capsys,
                                             monkeypatch):
        # A digest function that never repeats makes every checkpoint
        # comparison fail, so detection fires and replay cannot converge.
        import itertools
        import repro.core.snapshot as snapshot
        counter = itertools.count()
        monkeypatch.setattr(snapshot, "state_digest",
                            lambda ring: (next(counter),))
        code = main(["run", str(ring_obj), "--cycles", "16",
                     "--inject", "seu", "--checkpoint-every", "4"])
        assert code == 1
        assert "RECOVERY FAILED" in capsys.readouterr().out


class TestServeCommand:
    def test_rejects_zero_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestReportCommand:
    def test_generates_full_report(self, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", "-o", str(out), "--seed", "7"]) == 0
        text = out.read_text()
        assert "Table 1" in text and "Table 2" in text
        assert "Table 3" in text and "Fig. 7" in text
        assert "bit-exact" in text
        assert "MISMATCH" not in text

    def test_seed_changes_workload_not_anchors(self, tmp_path):
        a = tmp_path / "a.md"; b = tmp_path / "b.md"
        main(["report", "-o", str(a), "--seed", "1"])
        main(["report", "-o", str(b), "--seed", "2"])
        ta, tb = a.read_text(), b.read_text()
        # anchors identical regardless of seed
        assert "0.06" in ta and "0.06" in tb
        # the Ring's cycle count is workload-independent too
        assert "2511" in ta and "2511" in tb
