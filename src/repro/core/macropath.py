"""Fused macro-step execution: one generated kernel per steady period.

The pre-decoded fast path (:mod:`repro.core.fastpath`) already removes
per-cycle *decode*, but it still pays Python dispatch per cycle: one
closure call per operand fetch, per compute, per commit action, plus the
three thunk loops.  For a *steady-state* configuration the entire cycle
schedule is known at compile time — which microword each Dnode executes
at each phase of the local-sequencer period, which FIFOs pop, how the
feedback pipelines rotate — so this module goes one step further and
**generates straight-line Python source** for one full period of the
fabric and compiles it with :func:`exec`:

* operand fetches become inline expressions over the persistent state
  containers (``regs._values[i]``, ``dn._out``, pipeline ring-buffer
  indexing with the head tracked in a local variable);
* the ALU is inlined per opcode (sign reinterpretation is the branchless
  ``(v ^ 0x8000) - 0x8000``, masking is ``& 0xFFFF``), so a MAC is one
  Python expression instead of five closure calls;
* results live in local temporaries between the evaluate and commit
  phases — the master-slave staging registers are bypassed entirely;
* per-Dnode statistics are hoisted out of the loop and applied in closed
  form per run (pops and underflows, which depend on runtime FIFO
  occupancy, stay inline and exact).

The generated kernel advances ``periods x period`` cycles per call, so
Python-level dispatch is paid once per macro-step.  The period is the
LCM of the local-mode LIMIT values (1 for an all-global fabric); local
slot selection is baked per phase against the counters observed at
compile time, and :meth:`MacroPlan.matches_phase` guards re-entry (the
ring recompiles — or fetches a cached kernel — for a new entry phase).

Bit-identity: for every completed cycle the kernel is bit-identical to
the fast path (and therefore the interpreter) on all architectural state
— OUT latches, register files, pipelines, FIFO contents, pop/underflow
accounting, statistics, host-read order, and error messages.  Inside a
cycle aborted by a strict-FIFO error the macro kernel diverges slightly
further than the fast path already does from the interpreter: staged
writes of the aborted cycle are discarded (they lived in locals) and the
aborted cycle contributes no instruction counts.  Committed state up to
the last completed cycle is identical.

Configurations whose period would bloat the generated source (LCM above
:data:`MAX_PERIOD`, or too many statements overall) are ineligible and
simply stay on the per-cycle fast path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING

from repro import word
from repro.core.dnode import DnodeMode, _MULTIPLY_OPS, _OP_COST
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.switch import PortKind
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ring import Ring

#: Largest local-sequencer period (LCM of LIMITs) a macro kernel unrolls.
MAX_PERIOD = 64
#: Cap on period * dnodes, bounding generated-source size.
MAX_UNROLL_CELLS = 4096


def _signed(expr: str) -> str:
    """Branchless signed reinterpretation of a canonical 16-bit value."""
    return f"((({expr}) ^ 32768) - 32768)"


def _compute_expr(mw: MicroWord, a: str, b: Optional[str],
                  acc: Optional[str]) -> str:
    """Inline Python expression for one microword's combinational result.

    Operand expressions are pure (temporaries / attribute / index reads),
    so duplicating them inside a template is safe.
    """
    op = mw.op
    S = _signed
    if op is Opcode.MOV:
        return a
    if op is Opcode.ADD:
        return f"(({a}) + ({b})) & 65535"
    if op is Opcode.SUB:
        return f"(({a}) - ({b})) & 65535"
    if op is Opcode.MUL:
        return f"({S(a)} * {S(b)}) & 65535"
    if op is Opcode.MULH:
        return f"(({S(a)} * {S(b)}) >> 16) & 65535"
    if op is Opcode.MAC:
        return f"({S(a)} * {S(b)} + {S(acc)}) & 65535"
    if op is Opcode.MACS:
        return f"_sat({S(a)} * {S(b)} + {S(acc)})"
    if op is Opcode.MADD or op is Opcode.MSUB:
        coeff = word.to_signed(mw.imm)
        sign = "+" if op is Opcode.MADD else "-"
        return f"({S(a)} {sign} {S(b)} * ({coeff})) & 65535"
    if op is Opcode.AND:
        return f"(({a}) & ({b}))"
    if op is Opcode.OR:
        return f"(({a}) | ({b}))"
    if op is Opcode.XOR:
        return f"(({a}) ^ ({b}))"
    if op is Opcode.NOT:
        return f"(~({a})) & 65535"
    if op is Opcode.NEG:
        return f"(-{S(a)}) & 65535"
    if op is Opcode.ABS:
        return f"abs({S(a)}) & 65535"
    if op is Opcode.SHL:
        return f"(({a}) << (({b}) & 15)) & 65535"
    if op is Opcode.SHR:
        return f"({a}) >> (({b}) & 15)"
    if op is Opcode.ASR:
        return f"({S(a)} >> (({b}) & 15)) & 65535"
    if op is Opcode.ABSDIFF:
        return f"abs({S(a)} - {S(b)}) & 65535"
    if op is Opcode.MIN:
        return f"(({a}) if {S(a)} <= {S(b)} else ({b}))"
    if op is Opcode.MAX:
        return f"(({a}) if {S(a)} >= {S(b)} else ({b}))"
    if op is Opcode.ADDSAT:
        return f"_sat({S(a)} + {S(b)})"
    if op is Opcode.SUBSAT:
        return f"_sat({S(a)} - {S(b)})"
    if op is Opcode.CMPEQ:
        return f"(1 if ({a}) == ({b}) else 0)"
    if op is Opcode.CMPLT:
        return f"(1 if {S(a)} < {S(b)} else 0)"
    if op is Opcode.AVG2:
        return f"(({S(a)} + {S(b)}) >> 1) & 65535"
    raise SimulationError(f"opcode {op!r} has no macro template")


class MacroPlan:
    """One steady-state configuration fused into a generated kernel."""

    __slots__ = ("period", "_kernel", "_counter_entries")

    def __init__(self, period: int, kernel, counter_entries):
        self.period = period
        self._kernel = kernel
        self._counter_entries = counter_entries

    def matches_phase(self) -> bool:
        """True when every local counter sits at the baked entry phase."""
        for lc, c0, _limit in self._counter_entries:
            if lc._counter != c0:
                return False
        return True

    def entry_phase(self) -> tuple:
        """The baked entry counters (the ring's macro cache key part)."""
        return tuple(c0 for _lc, c0, _limit in self._counter_entries)

    def run(self, cycles: int, bus: int, host_in) -> None:
        """Advance *cycles* fabric clocks (must be a multiple of period)."""
        self._kernel(cycles // self.period, bus, host_in)


class _Emitter:
    """Source assembly helper: lines at explicit indent levels."""

    def __init__(self):
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def macro_period(ring: "Ring") -> int:
    """The fabric's steady-state schedule period (LCM of local LIMITs)."""
    period = 1
    for dn in ring.all_dnodes():
        if dn.mode is DnodeMode.LOCAL:
            period = math.lcm(period, dn.local.limit)
    return period


def compile_macro(ring: "Ring") -> Optional[MacroPlan]:
    """Fuse *ring*'s current configuration into a macro kernel.

    Returns None when the configuration is ineligible (period too large
    to unroll); the caller stays on the per-cycle fast path.
    """
    geometry = ring.geometry
    period = macro_period(ring)
    if period > MAX_PERIOD or period * geometry.dnodes > MAX_UNROLL_CELLS:
        return None

    env: Dict[str, object] = {
        "_R": ring,
        "_chk": word.check,
        "_sat": word.saturate_signed,
        "_SE": SimulationError,
    }
    layers, width = geometry.layers, geometry.width
    depth = geometry.pipeline_depth

    # --- bindings over the persistent state containers ----------------
    for l in range(layers):
        sw = ring._switches[l]
        env[f"_sw_{l}"] = sw
        for j in range(width):
            env[f"_pp_{l}_{j}"] = sw._pipes[j]
        for p in range(width):
            dn = ring._dnodes[l][p]
            env[f"_d_{l}_{p}"] = dn
            env[f"_rv_{l}_{p}"] = dn.regs._values
            env[f"_st_{l}_{p}"] = dn.stats

    def fifo_name(l: int, p: int, ch: int) -> str:
        name = f"_q_{l}_{p}_{ch}"
        if name not in env:
            env[name] = ring.fifo(l, p, ch)
        return name

    # --- per-phase microword schedule ---------------------------------
    counter_entries = []       # (LocalController, entry counter, limit)
    schedule: Dict[tuple, List[MicroWord]] = {}
    for l in range(layers):
        for p in range(width):
            dn = ring._dnodes[l][p]
            if dn.mode is DnodeMode.LOCAL:
                lc = dn.local
                limit = lc.limit
                c0 = lc._counter
                counter_entries.append((lc, c0, limit))
                slots = lc.slots()
                schedule[(l, p)] = [slots[(c0 + j) % limit]
                                    for j in range(period)]
            else:
                schedule[(l, p)] = [dn.global_word] * period

    # --- statement generators -----------------------------------------

    out = _Emitter()

    def emit_host_fetch(indent, l, p, port, channel, sw_index):
        temp = f"_hv_{l}_{p}_{port}"
        out.emit(indent, "if host_in is None:")
        out.emit(indent + 1, "raise _SE(")
        out.emit(indent + 2,
                 f"\"switch {sw_index} routes port {port} of position "
                 f"{p} to host channel {channel}, but no host \"")
        out.emit(indent + 2, "\"reader was supplied\"")
        out.emit(indent + 1, ")")
        out.emit(indent,
                 f"{temp} = _chk(host_in({channel}), "
                 f"'host channel {channel}')")
        return temp

    def emit_fifo_peek(indent, l, p, ch, name):
        q = fifo_name(l, p, ch)
        temp = f"_fv_{l}_{p}_{ch}"
        out.emit(indent, f"if {q}:")
        out.emit(indent + 1, f"{temp} = _chk({q}[0], '{name} FIFO{ch}')")
        out.emit(indent, "elif _R.strict_fifos:")
        out.emit(indent + 1, "raise _SE(")
        out.emit(indent + 2,
                 f"f\"D{l}.{p} read empty FIFO{ch} at cycle {{_cy}}\"")
        out.emit(indent + 1, ")")
        out.emit(indent, "else:")
        out.emit(indent + 1, "_R.fifo_underflows += 1")
        out.emit(indent + 1, f"{temp} = 0")
        return temp

    def emit_fifo_pop(indent, l, p, ch):
        q = fifo_name(l, p, ch)
        out.emit(indent, f"if {q}:")
        out.emit(indent + 1, f"{q}.popleft()")
        out.emit(indent + 1, f"_st_{l}_{p}.fifo_pops += 1")
        out.emit(indent, "elif _R.strict_fifos:")
        out.emit(indent + 1, "raise _SE(")
        out.emit(indent + 2,
                 f"f\"D{l}.{p} popped empty FIFO{ch} at cycle {{_cy}}\"")
        out.emit(indent + 1, ")")
        out.emit(indent, "else:")
        out.emit(indent + 1, "_R.fifo_underflows += 1")

    def rp_expr(sw_index, stage, lane):
        sw = ring._switches[sw_index]
        if not (1 <= stage <= sw.pipeline_depth and 1 <= lane <= sw.width):
            # Out-of-range taps reproduce the interpreter's runtime error.
            return f"_sw_{sw_index}.rp_read({stage}, {lane})", False
        return (f"_pp_{sw_index}_{lane - 1}"
                f"[(_hd_{sw_index} + {stage - 1}) % {depth}]"), True

    def emit_cycle(indent: int, phase: int) -> None:
        """One fabric clock: evals, shifts, commits, cycle accounting."""
        commits: List[tuple] = []   # deferred commit emissions
        for l in range(layers):
            sw = ring._switches[l]
            lu = ring.upstream_layer(l)
            for p in range(width):
                dn = ring._dnodes[l][p]
                mw = schedule[(l, p)][phase]

                # Routed-port resolution, with the fetches the interpreter
                # performs eagerly for every routed port (host reads and
                # out-of-range feedback taps) emitted unconditionally.
                port_exprs = {}
                for port in (1, 2):
                    src = sw.config.source_for(p, port)
                    kind = src.kind
                    if kind is PortKind.ZERO:
                        port_exprs[port] = "0"
                    elif kind is PortKind.UP:
                        port_exprs[port] = f"_d_{lu}_{src.index}._out"
                    elif kind is PortKind.RP:
                        expr, in_range = rp_expr(l, src.index, src.lane)
                        if not in_range:
                            out.emit(indent, expr)
                        port_exprs[port] = expr
                    elif kind is PortKind.BUS:
                        port_exprs[port] = "bus"
                    elif kind is PortKind.HOST:
                        port_exprs[port] = emit_host_fetch(
                            indent, l, p, port, src.index, l)
                    else:  # pragma: no cover - exhaustive over PortKind
                        raise SimulationError(
                            f"unhandled port source {src!r}")

                pops = []
                if mw.flags & Flag.POP_FIFO1:
                    pops.append(1)
                if mw.flags & Flag.POP_FIFO2:
                    pops.append(2)

                if mw.op is not Opcode.NOP:
                    def operand(src):
                        if src <= Source.R3:
                            return f"_rv_{l}_{p}[{int(src)}]"
                        if src is Source.IN1:
                            return port_exprs[1]
                        if src is Source.IN2:
                            return port_exprs[2]
                        if src is Source.FIFO1:
                            return emit_fifo_peek(indent, l, p, 1, dn.name)
                        if src is Source.FIFO2:
                            return emit_fifo_peek(indent, l, p, 2, dn.name)
                        if src is Source.BUS:
                            return "bus"
                        if src is Source.IMM:
                            return str(mw.imm)
                        if src is Source.SELF:
                            return f"_d_{l}_{p}._out"
                        if src is Source.ZERO:
                            return "0"
                        if src.is_feedback:
                            return rp_expr(l, src.feedback_stage,
                                           src.feedback_lane)[0]
                        raise SimulationError(f"unhandled source {src!r}")

                    a = operand(mw.src_a)
                    b = operand(mw.src_b) if mw.is_binary else None
                    acc = (f"_rv_{l}_{p}[{int(mw.dst)}]"
                           if mw.op in (Opcode.MAC, Opcode.MACS) else None)
                    temp = f"_t_{l}_{p}"
                    out.emit(indent,
                             f"{temp} = {_compute_expr(mw, a, b, acc)}")
                    if mw.dst.is_register:
                        commits.append(
                            ("store",
                             f"_rv_{l}_{p}[{int(mw.dst)}] = {temp}"))
                    if (mw.dst is Dest.OUT
                            or mw.flags & Flag.WRITE_OUT):
                        commits.append(
                            ("store", f"_d_{l}_{p}._out = {temp}"))
                for ch in pops:
                    commits.append(("pop", l, p, ch))

        # Shifts: before commits, so pipelines capture this cycle's
        # forward-visible OUT values (same order as the fast path).
        for k in range(layers):
            lu = ring.upstream_layer(k)
            out.emit(indent, f"_hd_{k} = (_hd_{k} - 1) % {depth}")
            for j in range(width):
                out.emit(indent,
                         f"_pp_{k}_{j}[_hd_{k}] = _d_{lu}_{j}._out")

        for entry in commits:
            if entry[0] == "store":
                out.emit(indent, entry[1])
            else:
                _tag, l, p, ch = entry
                emit_fifo_pop(indent, l, p, ch)

        out.emit(indent, "_cy += 1")
        out.emit(indent, "_R.cycles = _cy")

    # --- kernel assembly ----------------------------------------------
    out.emit(0, "def _kernel(periods, bus, host_in):")
    out.emit(1, "_cy = _R.cycles")
    out.emit(1, "_cy0 = _cy")
    for k in range(layers):
        out.emit(1, f"_hd_{k} = _sw_{k}._head")
    out.emit(1, "try:")
    out.emit(2, "for _ in range(periods):")
    for phase in range(period):
        emit_cycle(3, phase)
    out.emit(1, "finally:")
    for k in range(layers):
        out.emit(2, f"_sw_{k}._head = _hd_{k}")
    out.emit(2, "_finish(_cy - _cy0)")

    # --- hoisted statistics (closed-form, exact per completed cycle) --
    all_stats = tuple(dn.stats for dn in ring.all_dnodes())
    stat_entries = []
    for l in range(layers):
        for p in range(width):
            dn = ring._dnodes[l][p]
            prefix = [(0, 0, 0)]
            for mw in schedule[(l, p)]:
                pi, pa, pm = prefix[-1]
                if mw.op is not Opcode.NOP:
                    pi += 1
                    pa += _OP_COST.get(mw.op, 1)
                    if mw.op in _MULTIPLY_OPS:
                        pm += 1
                prefix.append((pi, pa, pm))
            totals = prefix[-1]
            if totals != (0, 0, 0):
                stat_entries.append((dn.stats, totals, tuple(prefix)))

    counters = tuple(counter_entries)

    def _finish(executed: int, _ring=ring, _period=period,
                _all=all_stats, _entries=tuple(stat_entries),
                _counters=counters) -> None:
        if not executed:
            return
        _ring.macro_cycles += executed
        full, extra = divmod(executed, _period)
        for stats in _all:
            stats.cycles += executed
        for stats, totals, prefix in _entries:
            ti, ta, tm = totals
            pi, pa, pm = prefix[extra]
            stats.instructions += full * ti + pi
            stats.arithmetic_ops += full * ta + pa
            if tm or pm:
                stats.multiplies += full * tm + pm
        for lc, c0, limit in _counters:
            lc._counter = (c0 + executed) % limit

    env["_finish"] = _finish

    source = out.source()
    code = compile(source, f"<macro period={period} ring={ring!r}>", "exec")
    exec(code, env)
    return MacroPlan(period, env["_kernel"], counters)


__all__ = ["MacroPlan", "compile_macro", "macro_period",
           "MAX_PERIOD", "MAX_UNROLL_CELLS"]
