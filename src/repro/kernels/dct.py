"""8-point DCT on the Systolic Ring (the JPEG/MPEG workhorse).

The paper's introduction motivates dedicated cores with "a wired IDCT
(Inverse Discrete Cosine Transform) core, which is known to be the
common most time consuming part of both [JPEG and MPEG]".  This kernel
shows the Ring computing the same transform *programmably*, and it is a
showcase of the local sequencer: an 8-point DCT row is eight dot
products with fixed basis rows, and one basis row fits **exactly** into
a Dnode's eight local slots:

    slot 0:   mul  r0, fifo1, #C[k][0]  [pop1]          ; restart sum
    slot 1-6: madd r0, r0, fifo1, #C[k][n]  [pop1]
    slot 7:   madd r0, r0, fifo1, #C[k][7]  [pop1,wout]  ; publish

Eight Dnodes (one per coefficient) consume the same sample stream and
each produce one coefficient every 8 cycles: 8 coefficients / 8 cycles
= **one sample per clock**, with zero controller involvement after
configuration — pure stand-alone local mode.

Arithmetic: the classic fixed-point DCT-II with basis scaled by
``2^SCALE_BITS`` and 16-bit wrapping accumulation.  The golden model
(:func:`dct8_reference`) uses identical arithmetic, so fabric results
are bit-exact; :func:`dct8_float` gives the real-valued transform for
accuracy checks (the fixed-point error is a fraction of a percent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.errors import SimulationError
from repro.host.system import RingSystem

N = 8
#: Fixed-point scale of the basis coefficients (values in [-32, 32], the
#: largest scale whose worst-case 16-bit accumulation cannot wrap).
SCALE_BITS = 5
SCALE = 1 << SCALE_BITS


def dct_basis() -> List[List[int]]:
    """The scaled integer DCT-II basis matrix ``C[k][n]``."""
    basis = []
    for k in range(N):
        ck = math.sqrt(1 / N) if k == 0 else math.sqrt(2 / N)
        basis.append([
            int(round(SCALE * ck * math.cos((2 * n + 1) * k * math.pi
                                            / (2 * N))))
            for n in range(N)
        ])
    return basis


BASIS = dct_basis()


def dct8_reference(samples: Sequence[int]) -> List[int]:
    """Golden fixed-point DCT-II of one 8-sample group (16-bit wrap)."""
    if len(samples) != N:
        raise SimulationError(f"DCT needs {N} samples, got {len(samples)}")
    out = []
    for k in range(N):
        acc = 0
        for n in range(N):
            acc = word.to_signed(word.wrap(
                acc + BASIS[k][n] * int(samples[n])))
        out.append(acc)
    return out


def dct8_float(samples: Sequence[int]) -> List[float]:
    """Real-valued orthonormal DCT-II (for accuracy comparisons)."""
    out = []
    for k in range(N):
        ck = math.sqrt(1 / N) if k == 0 else math.sqrt(2 / N)
        out.append(ck * sum(
            float(samples[n]) * math.cos((2 * n + 1) * k * math.pi
                                         / (2 * N))
            for n in range(N)
        ))
    return out


def coefficient_program(k: int) -> List[MicroWord]:
    """The 8-slot local program computing DCT coefficient *k*."""
    if not 0 <= k < N:
        raise SimulationError(f"coefficient index must be 0..7, got {k}")
    program = [MicroWord(
        Opcode.MUL, Source.FIFO1, Source.IMM, Dest.R0,
        flags=Flag.POP_FIFO1, imm=word.from_signed(BASIS[k][0]))]
    for n in range(1, N):
        flags = Flag.POP_FIFO1
        if n == N - 1:
            flags |= Flag.WRITE_OUT
        program.append(MicroWord(
            Opcode.MADD, Source.R0, Source.FIFO1, Dest.R0,
            flags=flags, imm=word.from_signed(BASIS[k][n])))
    return program


@dataclass
class DctResult:
    """Outcome of a fabric DCT run."""

    coefficients: np.ndarray   # (groups, 8) transform outputs
    cycles: int
    dnodes_used: int
    samples_per_cycle: float


def build_dct_system(ring: Optional[Ring] = None) -> RingSystem:
    """Configure 8 Dnodes (lane 0 of 8 layers) as the DCT bank."""
    if ring is None:
        ring = Ring(RingGeometry.ring(16))
    if ring.geometry.layers < N:
        raise SimulationError(
            f"the DCT bank needs {N} layers, ring has "
            f"{ring.geometry.layers}"
        )
    for k in range(N):
        ring.config.write_local_program(k, 0, coefficient_program(k))
        ring.config.write_mode(k, 0, DnodeMode.LOCAL)
    return RingSystem(ring)


def dct8_fabric(samples: Sequence[int],
                system: Optional[RingSystem] = None) -> DctResult:
    """Transform a stream of 8-sample groups on the fabric.

    Bit-exact against :func:`dct8_reference` applied per group.
    """
    samples = [int(v) for v in samples]
    if not samples or len(samples) % N:
        raise SimulationError(
            f"sample count must be a positive multiple of {N}, "
            f"got {len(samples)}"
        )
    groups = len(samples) // N
    if system is None:
        system = build_dct_system()
    ring = system.ring
    raw = [word.from_signed(v) for v in samples]
    taps = []
    for k in range(N):
        ring.push_fifo(k, 0, 1, raw)
        # OUT is refreshed at the end of each 8-slot loop.
        taps.append(system.data.add_tap(k, 0, skip=N - 1, every=N,
                                        limit=groups))
    system.run(groups * N)
    coefficients = np.zeros((groups, N), dtype=np.int64)
    for k, tap in enumerate(taps):
        if len(tap.samples) != groups:
            raise SimulationError(
                f"coefficient {k}: expected {groups} outputs, got "
                f"{len(tap.samples)}"
            )
        coefficients[:, k] = [word.to_signed(v) for v in tap.samples]
    return DctResult(
        coefficients=coefficients,
        cycles=system.cycles,
        dnodes_used=N,
        samples_per_cycle=1.0,
    )
