#!/usr/bin/env python
"""JPEG2000-style wavelet front end on the Systolic Ring (Table 2).

Builds a synthetic photographic-like image, runs the 2-D 5/3 lifting
transform on the Ring-16 fabric, verifies it bit-for-bit against the
reference lifting implementation, demonstrates the compression value
(energy compaction into the LL subband), reconstructs losslessly, and
prints the Table 2 implementation comparison with the analytic cycle
model scaled to the paper's 1024x768 workload.

Run:  python examples/wavelet_compression.py
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines.wavelet_asics import WAVELET_CIRCUITS
from repro.core.ring import RingGeometry
from repro.kernels.reference import dwt53_2d, idwt53_2d
from repro.kernels.wavelet import (
    DNODES_USED,
    dwt53_2d_fabric,
    wavelet_cycle_model,
)
from repro.tech.area import ring_area_mm2


def synthetic_image(size=32, seed=3):
    """Smooth gradients + texture: compressible like a photograph."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size]
    smooth = (96 + 64 * np.sin(x / 7.0) * np.cos(y / 9.0)).astype(int)
    texture = rng.integers(-12, 13, (size, size))
    return np.clip(smooth + texture, 0, 255)


def main() -> None:
    image = synthetic_image()
    coeffs, cycles = dwt53_2d_fabric(image)
    assert np.array_equal(coeffs, dwt53_2d(image)), "fabric diverged"
    assert np.array_equal(idwt53_2d(coeffs), image), "not reversible"

    half = image.shape[0] // 2
    total_energy = float(np.abs(coeffs).sum())
    ll_energy = float(np.abs(coeffs[:half, :half]).sum())
    print(f"{image.shape[0]}x{image.shape[1]} image transformed in "
          f"{cycles} fabric cycles "
          f"({cycles / image.size:.2f} cycles/pixel)")
    print(f"energy compaction: {100 * ll_energy / total_energy:.1f}% of "
          "coefficient energy in the LL quarter")
    print(f"lossless reconstruction verified; {DNODES_USED}/16 Dnodes "
          "used (25% of the Ring remains free, as the paper states)\n")

    # Table 2 at the paper's workload.
    paper_cycles = wavelet_cycle_model(768, 1024)
    ring16_area = ring_area_mm2(16, "0.18um",
                                extra_memory_bits=2 * 1024 * 16)
    rows = []
    for circuit in WAVELET_CIRCUITS.values():
        ms = circuit.time_for_image_s(768, 1024) * 1e3
        rows.append([circuit.name, circuit.technology, circuit.area_mm2,
                     circuit.frequency_hz / 1e6, ms, "no"])
    rows.append(["Systolic Ring-16 (this work)", "0.18um", ring16_area,
                 200.0, paper_cycles / 200e6 * 1e3, "yes"])
    print(render_table(
        ["circuit", "techno", "area mm^2", "MHz", "1024x768 (ms)",
         "flexible"],
        rows,
        title="Table 2 — wavelet transform implementations"))


if __name__ == "__main__":
    main()
