"""Functional tests of the ALU + multiplier model, including properties."""

import pytest
from hypothesis import given, strategies as st

from repro import word
from repro.core.alu import execute_op
from repro.core.isa import Opcode

raw16 = st.integers(min_value=0, max_value=0xFFFF)
signed16 = st.integers(min_value=-32768, max_value=32767)


def run_signed(op, a, b=0, acc=0, imm=0):
    """Execute with signed inputs, return a signed result."""
    return word.to_signed(execute_op(
        op, word.from_signed(a), word.from_signed(b),
        word.from_signed(acc), word.from_signed(imm)))


class TestBasicOps:
    def test_nop_returns_zero(self):
        assert execute_op(Opcode.NOP, 123, 45) == 0

    def test_mov_passes_a(self):
        assert execute_op(Opcode.MOV, 0xBEEF) == 0xBEEF

    @pytest.mark.parametrize("a,b,expected", [
        (3, 4, 7), (-3, 4, 1), (32767, 1, -32768),  # wraps
    ])
    def test_add(self, a, b, expected):
        assert run_signed(Opcode.ADD, a, b) == expected

    @pytest.mark.parametrize("a,b,expected", [
        (10, 3, 7), (-32768, 1, 32767),  # wraps
    ])
    def test_sub(self, a, b, expected):
        assert run_signed(Opcode.SUB, a, b) == expected

    def test_mul_low_half(self):
        assert run_signed(Opcode.MUL, 7, -3) == -21

    def test_mulh_high_half(self):
        # 0x4000 * 0x4000 = 0x1000_0000 -> high half 0x1000
        assert execute_op(Opcode.MULH, 0x4000, 0x4000) == 0x1000

    def test_mulh_negative(self):
        assert run_signed(Opcode.MULH, -32768, 2) == -1

    def test_logic_ops(self):
        assert execute_op(Opcode.AND, 0xF0F0, 0xFF00) == 0xF000
        assert execute_op(Opcode.OR, 0xF0F0, 0x0F00) == 0xFFF0
        assert execute_op(Opcode.XOR, 0xFFFF, 0x00FF) == 0xFF00
        assert execute_op(Opcode.NOT, 0x00FF) == 0xFF00

    def test_neg(self):
        assert run_signed(Opcode.NEG, 5) == -5
        assert run_signed(Opcode.NEG, -32768) == -32768  # hardware wrap


class TestShifts:
    def test_shl(self):
        assert execute_op(Opcode.SHL, 1, 4) == 16

    def test_shl_wraps(self):
        assert execute_op(Opcode.SHL, 0x8000, 1) == 0

    def test_shr_logical(self):
        assert execute_op(Opcode.SHR, 0x8000, 15) == 1

    def test_asr_sign_extends(self):
        assert run_signed(Opcode.ASR, -8, 1) == -4

    def test_asr_is_floor_division(self):
        assert run_signed(Opcode.ASR, -7, 1) == -4  # floor(-3.5)

    def test_shift_amount_uses_low_bits(self):
        assert execute_op(Opcode.SHL, 1, 16 + 4) == 16

    @given(signed16, st.integers(min_value=0, max_value=15))
    def test_asr_matches_python_floor_shift(self, a, n):
        assert run_signed(Opcode.ASR, a, n) == a >> n


class TestDspOps:
    def test_abs(self):
        assert run_signed(Opcode.ABS, -42) == 42

    def test_absdiff(self):
        assert run_signed(Opcode.ABSDIFF, 10, 30) == 20
        assert run_signed(Opcode.ABSDIFF, 30, 10) == 20

    @given(signed16, signed16)
    def test_absdiff_symmetric(self, a, b):
        assert run_signed(Opcode.ABSDIFF, a, b) == \
            run_signed(Opcode.ABSDIFF, b, a)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_absdiff_exact_for_pixels(self, a, b):
        assert run_signed(Opcode.ABSDIFF, a, b) == abs(a - b)

    def test_min_max_signed(self):
        assert run_signed(Opcode.MIN, -5, 3) == -5
        assert run_signed(Opcode.MAX, -5, 3) == 3

    @given(signed16, signed16)
    def test_min_max_partition(self, a, b):
        lo = run_signed(Opcode.MIN, a, b)
        hi = run_signed(Opcode.MAX, a, b)
        assert {lo, hi} == {min(a, b), max(a, b)}

    def test_avg2_floor(self):
        assert run_signed(Opcode.AVG2, 3, 4) == 3
        assert run_signed(Opcode.AVG2, -3, -4) == -4  # floor

    @given(signed16, signed16)
    def test_avg2_matches_floor(self, a, b):
        assert run_signed(Opcode.AVG2, a, b) == (a + b) >> 1

    def test_cmp_ops(self):
        assert execute_op(Opcode.CMPEQ, 5, 5) == 1
        assert execute_op(Opcode.CMPEQ, 5, 6) == 0
        assert run_signed(Opcode.CMPLT, -1, 0) == 1
        assert run_signed(Opcode.CMPLT, 0, -1) == 0


class TestSaturating:
    def test_addsat_clamps(self):
        assert run_signed(Opcode.ADDSAT, 30000, 10000) == 32767
        assert run_signed(Opcode.SUBSAT, -30000, 10000) == -32768

    @given(signed16, signed16)
    def test_addsat_in_range(self, a, b):
        result = run_signed(Opcode.ADDSAT, a, b)
        assert -32768 <= result <= 32767
        assert result == max(-32768, min(32767, a + b))


class TestMacFamily:
    def test_mac_is_mul_plus_acc(self):
        assert run_signed(Opcode.MAC, 3, 4, acc=10) == 22

    @given(signed16, signed16, signed16)
    def test_mac_matches_wrapped_reference(self, a, b, acc):
        expected = word.wrap(a * b + acc)
        assert execute_op(Opcode.MAC, word.from_signed(a),
                          word.from_signed(b),
                          word.from_signed(acc)) == expected

    def test_macs_saturates(self):
        assert run_signed(Opcode.MACS, 200, 200, acc=30000) == 32767

    def test_madd_uses_imm_coefficient(self):
        # a + b*imm
        assert run_signed(Opcode.MADD, 10, 3, imm=5) == 25

    def test_msub_uses_imm_coefficient(self):
        assert run_signed(Opcode.MSUB, 10, 3, imm=5) == -5

    @given(signed16, signed16, signed16)
    def test_madd_matches_wrapped_reference(self, a, b, c):
        expected = word.wrap(a + b * c)
        assert execute_op(Opcode.MADD, word.from_signed(a),
                          word.from_signed(b), 0,
                          imm=word.from_signed(c)) == expected


class TestValidation:
    def test_rejects_non_canonical_operand(self):
        with pytest.raises(ValueError):
            execute_op(Opcode.ADD, -1, 0)
        with pytest.raises(ValueError):
            execute_op(Opcode.ADD, 0, 0x10000)

    @given(st.sampled_from(list(Opcode)), raw16, raw16, raw16)
    def test_every_opcode_returns_canonical(self, op, a, b, acc):
        result = execute_op(op, a, b, acc)
        assert 0 <= result <= 0xFFFF
