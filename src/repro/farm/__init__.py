"""RingFarm: multi-tenant serving over the Systolic Ring engines.

The serving-at-scale layer (ROADMAP item 1): an asyncio front door
(:class:`~repro.farm.farm.RingFarm`) routes compiled-plan jobs
(:class:`~repro.farm.job.FarmJob`) to a pool of ring-owning worker
processes (:mod:`repro.farm.worker`), keyed by configuration
fingerprint so same-fabric tenants share warm plan caches; a
stdlib-only TCP/JSON-lines server (:mod:`repro.farm.server`) is the
network face.  Backpressure is explicit (:class:`FarmRejected` with
retry-after), queues are bounded, and live job migration between
workers rides the checkpoint machinery bit-identically.
"""

from repro.farm.farm import FarmRejected, RingFarm
from repro.farm.job import FarmJob, FarmResult
from repro.farm.worker import FarmWorker, JobExecutor

__all__ = [
    "FarmJob",
    "FarmRejected",
    "FarmResult",
    "FarmWorker",
    "JobExecutor",
    "RingFarm",
]
