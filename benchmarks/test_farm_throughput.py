"""RingFarm serving throughput: warm fingerprint-affinity vs cold random.

The serving-layer acceptance benchmark: a 4-worker farm serves a mixed
multi-tenant load of 12 distinct FIR configurations (distinct
configuration fingerprints, same fabric shape) submitted by 8 concurrent
client coroutines.  Two routing policies are measured end to end through
``RingFarm.submit``:

* ``affinity`` (warm) — each fingerprint pins to one worker, so its
  per-worker plan cache (capacity 4, i.e. 3 resident fingerprints per
  worker) serves every repeat from a cached compiled plan;
* ``random`` (cold baseline) — jobs scatter across the pool, every
  worker sees ~all 12 fingerprints, and the capacity-4 caches thrash.

``BENCH_farm.json`` records jobs/sec, per-submit p99 latency, warm-job
ratio and compile counts for both modes.  On hosts with at least 4 cores
the warm mode must sustain at least 2x the cold jobs/sec; on smaller
hosts (1-2 core CI runners) the numbers are still recorded but the ratio
assertion is skipped — the warm-ratio *logic* assertions always run.

Run with ``pytest -s benchmarks/test_farm_throughput.py`` for the table.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.farm import FarmJob, FarmRejected, RingFarm
from repro.kernels.fir import build_spatial_fir

#: Acceptance floor: warm (affinity) jobs/sec over cold (random) jobs/sec,
#: asserted only when the host has at least 4 cores for the 4 workers.
TARGET_FARM_SPEEDUP = 2.0

#: Pool size the acceptance target is defined at.
FARM_WORKERS = 4

#: Distinct configuration fingerprints in the serving mix.  At cache
#: capacity 4 per worker, affinity routing fits 12/4 = 3 fingerprints per
#: worker; random routing shows each worker ~all 12 and thrashes.
FINGERPRINTS = 12
PLAN_CACHE = 4

#: Submissions per fingerprint and concurrent client coroutines.
ROUNDS = 6
CLIENTS = 8

#: Cycle budget per job (short jobs: routing/cache effects dominate —
#: a 12-cycle Ring-16 run costs ~0.14 ms while a plane write plus plan
#: compile costs ~0.39 ms, so cache misses dominate the cold path).
JOB_CYCLES = 12

#: FIR tap count: 8 taps = an 8x2 Ring-16 fabric, whose larger plane
#: makes each reconfiguration (and each plan compile) cost what it does
#: on serving-sized fabrics.
FIR_TAPS = 8

#: Where the recorded numbers land (repo root, picked up by CI artifacts).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_farm.json"

SIGNAL = [v & 0xFFFF for v in (3, -1, 4, 1, -5, 9, 2, -6)]


def _make_job(fingerprint: int, round_no: int) -> FarmJob:
    """One spatial FIR job; the tap immediates are what makes the
    12 fingerprints distinct (same Ring-16 shape, different planes).
    Multiplying by 5 (invertible mod 17) keeps all 12 coefficient
    vectors — and so all 12 planes — pairwise distinct."""
    coeffs = [((fingerprint * 5 + k * 3) % 17) - 8 or 1
              for k in range(FIR_TAPS)]
    ring = build_spatial_fir(coeffs).ring
    return FarmJob(
        tenant=f"tenant{fingerprint}",
        layers=ring.geometry.layers,
        width=ring.geometry.width,
        plane=ring.config.capture_plane(),
        cycles=JOB_CYCLES,
        streams={0: SIGNAL},
        taps=[(FIR_TAPS - 1, 1, None)],
        job_id=f"f{fingerprint}r{round_no}",
        # Serving throughput is the metric: skip the full-fabric digest
        # (it costs about as much as the job's own cycle budget).
        want_digest=False,
    )


async def _drive(routing: str) -> dict:
    """Serve the full mix through one farm; jobs/sec + latency stats."""
    farm = RingFarm(workers=FARM_WORKERS, plan_cache=PLAN_CACHE,
                    routing=routing, queue_depth=64,
                    tenant_quota=CLIENTS * 4)
    # Paired bursts cycling through all 12 fingerprints: tenants submit
    # short bursts of one configuration (the serving pattern affinity
    # routing exists for), so under affinity the pinned worker sees each
    # pair back-to-back and the resident plane spares even the
    # reconfiguration write — while the fast fingerprint cycling still
    # thrashes the capacity-4 caches under random routing.
    backlog = [_make_job(f, 2 * r + half)
               for r in range(ROUNDS // 2)
               for f in range(FINGERPRINTS)
               for half in range(2)]
    total_jobs = len(backlog)
    latencies: list = []
    retries = 0

    async def client() -> None:
        nonlocal retries
        while backlog:
            job = backlog.pop()
            while True:
                began = perf_counter()
                try:
                    await farm.submit(job)
                except FarmRejected as exc:
                    retries += 1
                    await asyncio.sleep(exc.retry_after)
                    continue
                latencies.append(perf_counter() - began)
                break

    async with farm:
        started = perf_counter()
        await asyncio.gather(*(client() for _ in range(CLIENTS)))
        elapsed = perf_counter() - started

    latencies.sort()
    p99 = latencies[min(len(latencies) - 1,
                        int(0.99 * (len(latencies) - 1)))]
    return {
        "jobs": total_jobs,
        "jobs_per_sec": total_jobs / elapsed,
        "p99_ms": p99 * 1000.0,
        "warm_ratio": farm.warm_jobs / farm.jobs_completed,
        "plan_compiles": farm.plan_compiles,
        "plan_hits": farm.plan_hits,
        "retries": retries,
        "worker_processes": sum(1 for w in farm.workers
                                if w.using_process),
    }


def test_farm_warm_vs_cold_records_and_meets_target():
    cores = os.cpu_count() or 1
    cold = asyncio.run(_drive("random"))
    warm = asyncio.run(_drive("affinity"))
    speedup = warm["jobs_per_sec"] / cold["jobs_per_sec"]

    emit(render_table(
        ["routing", "jobs/s", "p99 ms", "warm ratio", "compiles"],
        [[name, f"{stats['jobs_per_sec']:,.1f}",
          f"{stats['p99_ms']:.2f}", f"{stats['warm_ratio']:.2f}",
          str(stats["plan_compiles"])]
         for name, stats in (("random (cold)", cold),
                             ("affinity (warm)", warm))],
        title=(f"RingFarm serving, {FARM_WORKERS} workers x "
               f"{FINGERPRINTS} fingerprints ({cores} cores): "
               f"warm/cold = {speedup:.2f}x"),
    ))

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "farm_throughput",
        "workers": FARM_WORKERS,
        "fingerprints": FINGERPRINTS,
        "plan_cache": PLAN_CACHE,
        "job_cycles": JOB_CYCLES,
        "clients": CLIENTS,
        "cpu_count": cores,
        "cold_random": {k: round(v, 3) if isinstance(v, float) else v
                        for k, v in cold.items()},
        "warm_affinity": {k: round(v, 3) if isinstance(v, float) else v
                          for k, v in warm.items()},
        "warm_speedup_vs_cold": round(speedup, 2),
        "target_speedup": TARGET_FARM_SPEEDUP,
        "target_asserted": cores >= 4,
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")

    # Logic assertions hold on any host: affinity keeps the caches warm
    # (everything after the first round re-adopts), random thrashes.
    assert warm["warm_ratio"] >= 0.7, warm
    assert warm["plan_compiles"] <= cold["plan_compiles"]
    assert warm["warm_ratio"] > cold["warm_ratio"]

    if cores >= 4:
        assert speedup >= TARGET_FARM_SPEEDUP, (
            f"warm affinity serving sustained only {speedup:.2f}x the "
            f"cold random baseline (target {TARGET_FARM_SPEEDUP}x on "
            f"{cores} cores)"
        )
    else:
        emit(f"speedup assertion skipped: {cores} core(s) < 4")
