#!/usr/bin/env python
"""A video-codec front end on the Systolic Ring: motion + transform.

The paper targets "lots of video-relative techniques" in 3G multimedia.
This example chains the two halves of an H.261/MPEG-style encoder front
end, both on the fabric:

1. **motion estimation** — block-wise full search between two synthetic
   frames (the Table 1 kernel, per macroblock);
2. **transform coding** — the 8-point DCT bank (local-sequencer
   showcase) applied to the rows of each motion-compensated residual
   block, followed by dead-zone quantisation to show the energy
   compaction that makes the whole pipeline worthwhile.

Everything the fabric produces is verified against golden models.

Run:  python examples/video_codec_frontend.py
"""

import numpy as np

from repro.analysis import render_table
from repro.kernels.dct import SCALE, build_dct_system, dct8_fabric, \
    dct8_reference
from repro.kernels.motion_estimation import estimate_frame_motion

BLOCK = 8


def synthetic_pair(size=24, motion=(2, -3), seed=11):
    """A textured-but-smooth frame pair (photographic-like, not noise)."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size]
    base = (128 + 80 * np.sin(x / 3.5) * np.cos(y / 2.5)
            + rng.integers(-8, 9, (size, size))).astype(np.int64)
    base = np.clip(base, 0, 255)
    dy, dx = motion
    moved = np.zeros_like(base)
    moved[max(dy, 0):size + min(dy, 0), max(dx, 0):size + min(dx, 0)] = \
        base[max(-dy, 0):size + min(-dy, 0),
             max(-dx, 0):size + min(-dx, 0)]
    return base, np.clip(moved + rng.integers(-2, 3, base.shape), 0, 255)


def motion_compensate(previous, current, vectors, block=BLOCK):
    """Residual = current - motion-compensated prediction."""
    residual = np.zeros_like(current, dtype=np.int64)
    by_count, bx_count, _ = vectors.shape
    for by in range(by_count):
        for bx in range(bx_count):
            y0, x0 = by * block, bx * block
            dy, dx = vectors[by, bx]
            pred = previous[y0 + dy:y0 + dy + block,
                            x0 + dx:x0 + dx + block]
            residual[y0:y0 + block, x0:x0 + block] = \
                current[y0:y0 + block, x0:x0 + block].astype(np.int64) \
                - pred
    return residual


def main() -> None:
    previous, current = synthetic_pair()

    motion = estimate_frame_motion(previous, current, block=BLOCK,
                                   displacement=4)
    residual = motion_compensate(previous, current, motion.vectors)
    print(f"motion search: {motion.blocks[0]}x{motion.blocks[1]} blocks, "
          f"{motion.cycles} fabric cycles")
    print(f"residual energy: {np.abs(residual).sum()} vs raw frame "
          f"{np.abs(current).sum()} "
          f"({100 * np.abs(residual).sum() / np.abs(current).sum():.1f}%)\n")

    # Row DCT of every residual block on the fabric, verified per row.
    system = build_dct_system()
    rows = [residual[y, x:x + BLOCK]
            for y in range(residual.shape[0])
            for x in range(0, residual.shape[1], BLOCK)]
    stream = [int(v) for row in rows for v in row]
    result = dct8_fabric(stream, system)
    for g, row in enumerate(rows):
        assert result.coefficients[g].tolist() == \
            dct8_reference([int(v) for v in row]), "fabric DCT diverged"

    # the interior block sees the exact true motion
    assert tuple(motion.vectors[1, 1]) == (-2, 3), "wrong motion vector"

    def quantised_nonzeros(values):
        groups = [values[y, x:x + BLOCK]
                  for y in range(values.shape[0])
                  for x in range(0, values.shape[1], BLOCK)]
        flat = [int(v) for row in groups for v in row]
        coeffs = dct8_fabric(flat, build_dct_system()).coefficients
        # dead-zone quantisation truncates toward zero (not floor!)
        quantised = np.sign(coeffs) * (np.abs(coeffs) // (8 * SCALE))
        return int(np.count_nonzero(quantised)), coeffs.size

    raw_nonzero, total = quantised_nonzeros(current.astype(np.int64))
    res_nonzero, _ = quantised_nonzeros(residual)
    rows_table = [
        ["residual rows transformed", len(rows)],
        ["fabric cycles (DCT)", result.cycles],
        ["nonzero coeffs, intra (no motion)", f"{raw_nonzero}/{total}"],
        ["nonzero coeffs, residual (with motion)",
         f"{res_nonzero}/{total}"],
        ["coding gain", f"{raw_nonzero / max(res_nonzero, 1):.1f}x fewer"],
    ]
    print(render_table(["stage", "value"], rows_table,
                       title="Transform coding (fabric DCT, verified)"))
    print("\ninterior motion vector (dy, dx):",
          tuple(int(v) for v in motion.vectors[1, 1]),
          "= the true motion")


if __name__ == "__main__":
    main()
