"""The paper's application kernels, as reference code and fabric mappings.

Each kernel module provides (a) a bit-exact reference implementation and
(b) a mapping that configures a :class:`~repro.core.ring.Ring` /
:class:`~repro.host.system.RingSystem` to compute the same function,
returning both results and cycle counts:

* :mod:`repro.kernels.reference` — numpy/integer golden models;
* :mod:`repro.kernels.fir` — transversal FIR, spatial (one tap per layer,
  1 sample/cycle) and resource-shared (one Dnode, local mode);
* :mod:`repro.kernels.iir` — recursive filters using the SELF feedback
  path (the "RII" macro-operator of the conclusion) and the MAC
  macro-operator;
* :mod:`repro.kernels.wavelet` — the 5/3 lifting DWT of Table 2;
* :mod:`repro.kernels.motion_estimation` — the full-search block matcher
  of Table 1;
* :mod:`repro.kernels.fifo_emulation` — Dnode-as-FIFO (local mode), one
  of the paper's stand-alone macro-operators.
"""

from repro.kernels import reference
from repro.kernels.fir import (
    FirResult,
    build_spatial_fir,
    shared_fir,
    shared_fir_program,
    spatial_fir,
)
from repro.kernels.iir import (
    IirResult,
    biquad,
    biquad_program,
    build_first_order_iir,
    first_order_iir,
    mac_accumulate,
    reference_biquad,
)
from repro.kernels.wavelet import (
    WaveletResult,
    build_lifting_system,
    dwt53_2d_fabric,
    dwt53_2d_multilevel_fabric,
    lifting53_forward_fabric,
    wavelet_cycle_model,
)
from repro.kernels.motion_estimation import (
    FrameMotionResult,
    MotionEstimationResult,
    build_me_system,
    cycle_model as me_cycle_model,
    estimate_frame_motion,
    full_search_me,
)
from repro.kernels.dct import (
    DctResult,
    build_dct_system,
    dct8_fabric,
    dct8_float,
    dct8_reference,
)
from repro.kernels.matrix import (
    MatVecResult,
    build_matvec_system,
    matvec_fabric,
    matvec_reference,
    row_program,
)
from repro.kernels.fifo_emulation import (
    FifoPlan,
    build_delay_line,
    delay_line,
    plan_delay,
)

__all__ = [
    "reference",
    "FirResult",
    "build_spatial_fir",
    "shared_fir",
    "shared_fir_program",
    "spatial_fir",
    "IirResult",
    "biquad",
    "biquad_program",
    "build_first_order_iir",
    "first_order_iir",
    "mac_accumulate",
    "reference_biquad",
    "WaveletResult",
    "build_lifting_system",
    "dwt53_2d_fabric",
    "dwt53_2d_multilevel_fabric",
    "lifting53_forward_fabric",
    "wavelet_cycle_model",
    "FrameMotionResult",
    "MotionEstimationResult",
    "build_me_system",
    "me_cycle_model",
    "estimate_frame_motion",
    "full_search_me",
    "DctResult",
    "build_dct_system",
    "dct8_fabric",
    "dct8_float",
    "dct8_reference",
    "MatVecResult",
    "build_matvec_system",
    "matvec_fabric",
    "matvec_reference",
    "row_program",
    "FifoPlan",
    "build_delay_line",
    "delay_line",
    "plan_delay",
]
