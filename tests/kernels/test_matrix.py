"""Tests for the streaming matrix-vector engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.kernels.matrix import (
    MatVecResult,
    build_matvec_system,
    matvec_fabric,
    matvec_reference,
    row_program,
)


class TestReference:
    def test_identity(self):
        eye = np.eye(4, dtype=int)
        assert matvec_reference(eye, [1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_matches_numpy_in_range(self, rng):
        m = rng.integers(-10, 11, (4, 6))
        v = [int(x) for x in rng.integers(-20, 21, 6)]
        assert matvec_reference(m, v) == (m @ v).tolist()


class TestRowProgram:
    def test_slot_count_equals_columns(self):
        for cols in range(1, 9):
            assert len(row_program([1] * cols)) == cols

    def test_too_many_columns(self):
        with pytest.raises(SimulationError):
            row_program([1] * 9)


class TestFabric:
    def test_identity_matrix(self):
        eye = np.eye(4, dtype=int)
        result = matvec_fabric(eye, [[5, -3, 7, 2]])
        assert result.products[0].tolist() == [5, -3, 7, 2]

    def test_matches_reference(self, rng):
        m = rng.integers(-15, 16, (5, 7))
        vectors = [list(map(int, rng.integers(-30, 31, 7)))
                   for _ in range(4)]
        result = matvec_fabric(m, vectors)
        for i, v in enumerate(vectors):
            assert result.products[i].tolist() == matvec_reference(m, v)

    def test_one_element_per_cycle(self, rng):
        m = rng.integers(-5, 6, (3, 8))
        vectors = [list(map(int, rng.integers(-5, 6, 8)))
                   for _ in range(5)]
        result = matvec_fabric(m, vectors)
        assert result.cycles == 5 * 8
        assert result.dnodes_used == 3

    def test_rotation_matrix_application(self):
        """A scaled Givens rotation: x'^2+y'^2 ~ scale^2 (x^2+y^2)."""
        import math
        scale = 64
        theta = math.pi / 6
        rot = [[round(scale * math.cos(theta)),
                -round(scale * math.sin(theta))],
               [round(scale * math.sin(theta)),
                round(scale * math.cos(theta))]]
        result = matvec_fabric(np.array(rot), [[30, 40]])
        x, y = result.products[0] / scale
        assert math.hypot(x, y) == pytest.approx(50, rel=0.02)

    def test_single_column_matrix(self):
        result = matvec_fabric(np.array([[3], [5]]), [[7]])
        assert result.products[0].tolist() == [21, 35]

    def test_validation(self, rng):
        with pytest.raises(SimulationError, match="2-D"):
            build_matvec_system(np.arange(4))
        with pytest.raises(SimulationError, match="columns"):
            build_matvec_system(rng.integers(0, 5, (2, 9)))
        with pytest.raises(SimulationError, match="vector length"):
            matvec_fabric(np.eye(2, dtype=int), [[1, 2, 3]])
        with pytest.raises(SimulationError, match="at least one"):
            matvec_fabric(np.eye(2, dtype=int), [])

    def test_too_many_rows_for_ring(self, rng):
        from repro.core.ring import Ring, RingGeometry

        ring = Ring(RingGeometry.ring(4))  # 2 layers
        with pytest.raises(SimulationError, match="rows"):
            build_matvec_system(rng.integers(0, 3, (3, 4)), ring)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_reference(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(-12, 13, (rows, cols))
        v = [int(x) for x in rng.integers(-25, 26, cols)]
        result = matvec_fabric(m, [v])
        assert result.products[0].tolist() == matvec_reference(m, v)

    def test_dct_is_a_special_case(self, rng):
        """The DCT bank is this engine with the DCT basis matrix."""
        from repro.kernels.dct import BASIS, dct8_reference

        samples = [int(v) for v in rng.integers(-255, 256, 8)]
        result = matvec_fabric(np.array(BASIS), [samples])
        assert result.products[0].tolist() == dct8_reference(samples)
