"""Large-fabric smoke tests: the simulator handles the paper's upper
sizes (Ring-64 of Fig. 7, and a Ring-256 — the size the paper argues
needs multi-level reconfiguration)."""

import numpy as np
import pytest

from repro.analysis.mips import measured_mips, ring_peak_mips
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry, make_ring


class TestRing64:
    def test_fig7_fabric_runs_fully_busy(self):
        ring = make_ring(64)
        for dn in ring.all_dnodes():
            ring.config.write_microword(dn.layer, dn.position, MicroWord(
                Opcode.MAC, Source.ZERO, Source.ZERO, Dest.R0))
        ring.run(50)
        assert measured_mips(ring) == pytest.approx(ring_peak_mips(64))

    def test_motion_estimation_on_ring64(self, rng):
        from repro.kernels.motion_estimation import full_search_me
        from repro.kernels.reference import full_search

        ref = rng.integers(0, 256, (4, 4))
        area = rng.integers(0, 256, (10, 10))
        _, _, expected = full_search(ref, area)
        result = full_search_me(ref, area, dnodes=64)
        assert np.array_equal(result.sad_map, expected)
        # more Dnodes -> fewer batches -> fewer cycles
        assert result.cycles < full_search_me(ref, area,
                                              dnodes=16).cycles


class TestRing256:
    def test_fabric_instantiates_and_runs(self):
        ring = make_ring(256)
        assert ring.geometry.layers == 128
        # a 256-stage pass-around token ring
        from repro.core.switch import PortSource

        for k in range(128):
            ring.config.write_switch_route(k, 0, 1, PortSource.up(0))
            ring.config.write_microword(k, 0, MicroWord(
                Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=1))
        ring.dnode(127, 0)._out = 0
        ring.run(128)
        # the token gained +1 at each of the 128 layers
        assert ring.dnode(127, 0).out == 128

    def test_local_mode_at_scale(self):
        """256 stand-alone MAC units with zero controller traffic."""
        ring = make_ring(256)
        program = [MicroWord(Opcode.MAC, Source.FIFO1, Source.FIFO2,
                             Dest.R0,
                             flags=Flag.POP_FIFO1 | Flag.POP_FIFO2)]
        for dn in ring.all_dnodes():
            ring.config.write_local_program(dn.layer, dn.position,
                                            program)
            ring.config.write_mode(dn.layer, dn.position, DnodeMode.LOCAL)
            ring.push_fifo(dn.layer, dn.position, 1, [2] * 10)
            ring.push_fifo(dn.layer, dn.position, 2, [3] * 10)
        writes_before = ring.config.writes
        ring.run(10)
        assert ring.config.writes == writes_before
        assert all(dn.regs.read(0) == 60 for dn in ring.all_dnodes())
        # peak of the paper's scaling table: 51.2 GOPS-equivalent
        assert measured_mips(ring) == pytest.approx(51_200.0)

    def test_area_report_at_scale(self):
        from repro.tech.area import core_area_mm2

        report = core_area_mm2(RingGeometry.ring(256), "0.18um")
        assert report.overhead_fraction < 0.25
        assert report.total_mm2 == pytest.approx(12.8, rel=0.05)
