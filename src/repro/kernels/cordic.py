"""CORDIC rotation/vectoring on the Systolic Ring — shift-add only.

The classic multiplier-free coordinate rotator, spatially unrolled: each
iteration is a branch-free bundle of ASR/XOR/SUB/ADD Dnodes (the rotation
direction becomes a sign mask ``m``, conditional negation is
``(v ^ m) - m``), so ``iterations`` bundles pipeline down the ring at one
full 3-component rotation per cycle.  Angles use the binary convention of
:data:`repro.kernels.reference.ATAN16` — 2^16 units per turn, the 16-bit
word wrap *is* the circle wrap.

Both modes compile from :class:`~repro.compiler.graph.DataflowGraph`
builders, so they feed ``compile_graph``/``autotune``/``RingFarm`` like
any library graph, and run bit-identical to
:func:`repro.kernels.reference.cordic_rotate` /
:func:`~repro.kernels.reference.cordic_vector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.compiler.codegen import CompiledProgram, compile_graph
from repro.compiler.graph import CompileError, DataflowGraph
from repro.core.ring import Ring
from repro.kernels.reference import ATAN16


@dataclass
class CordicResult:
    """Outcome of a fabric CORDIC run (streams of x/y/z components)."""

    x: List[int]
    y: List[int]
    z: List[int]
    iterations: int
    dnodes_used: int
    latency: int


def _step(g: DataflowGraph, x: int, y: int, z: int, m: int, i: int):
    """One CORDIC iteration: conditional add/sub via the sign mask *m*."""
    ex = g.op("sub", g.op("xor", g.op("asr", y, g.const(i)), m), m)
    ey = g.op("sub", g.op("xor", g.op("asr", x, g.const(i)), m), m)
    ez = g.op("sub", g.op("xor", g.const(ATAN16[i]), m), m)
    return (g.op("sub", x, ex), g.op("add", y, ey), g.op("sub", z, ez))


def _check_iterations(iterations: int) -> None:
    if not 1 <= iterations <= len(ATAN16):
        raise CompileError(
            f"iterations must be 1..{len(ATAN16)}, got {iterations}")


def rotation_graph(iterations: int = 8) -> DataflowGraph:
    """Rotation mode: rotate ``(x, y)`` on channels 0/1 by ``z`` (ch 2).

    The direction mask is ``z >> 15`` (rotate the residual angle toward
    zero); outputs are the x/y/z streams after *iterations* stages.
    """
    _check_iterations(iterations)
    g = DataflowGraph()
    x, y, z = g.input(0), g.input(1), g.input(2)
    for i in range(iterations):
        m = g.op("asr", z, g.const(15))
        x, y, z = _step(g, x, y, z, m, i)
    for node in (x, y, z):
        g.output(node)
    return g


def vectoring_graph(iterations: int = 8) -> DataflowGraph:
    """Vectoring mode: drive ``y`` (ch 1) to zero, accumulate the angle.

    The direction mask is ``~(y >> 15)`` — rotate toward the x axis —
    so ``x`` converges to ``CORDIC_GAIN * |(x, y)|`` and ``z`` to
    ``z + atan2(y, x)`` in 2^16-per-turn units.
    """
    _check_iterations(iterations)
    g = DataflowGraph()
    x, y, z = g.input(0), g.input(1), g.input(2)
    for i in range(iterations):
        m = g.op("not", g.op("asr", y, g.const(15)))
        x, y, z = _step(g, x, y, z, m, i)
    for node in (x, y, z):
        g.output(node)
    return g


def compile_cordic(mode: str = "rotate", iterations: int = 8,
                   **compile_kwargs) -> CompiledProgram:
    """Compile one CORDIC mode; *compile_kwargs* go to ``compile_graph``."""
    if mode == "rotate":
        graph = rotation_graph(iterations)
    elif mode == "vector":
        graph = vectoring_graph(iterations)
    else:
        raise CompileError(f"unknown CORDIC mode {mode!r}")
    return compile_graph(graph, **compile_kwargs)


def _run(graph: DataflowGraph, xs, ys, zs, iterations: int,
         ring: Optional[Ring], compile_kwargs: dict) -> CordicResult:
    program = compile_graph(graph, **compile_kwargs)
    streams: Dict[int, Sequence[int]] = {0: list(xs), 1: list(ys),
                                         2: list(zs)}
    outs = program.run(streams, ring=ring)
    xo, yo, zo = (outs[node] for node in graph.outputs)
    return CordicResult(x=xo, y=yo, z=zo, iterations=iterations,
                        dnodes_used=program.dnodes_used,
                        latency=program.latency)


def cordic_rotate_fabric(xs: Sequence[int], ys: Sequence[int],
                         zs: Sequence[int], iterations: int = 8,
                         ring: Optional[Ring] = None,
                         **compile_kwargs) -> CordicResult:
    """Rotate a stream of ``(x, y)`` points by their ``z`` angles.

    Bit-exact against :func:`repro.kernels.reference.cordic_rotate`
    applied per sample.
    """
    return _run(rotation_graph(iterations), xs, ys, zs, iterations,
                ring, compile_kwargs)


def cordic_vector_fabric(xs: Sequence[int], ys: Sequence[int],
                         zs: Optional[Sequence[int]] = None,
                         iterations: int = 8,
                         ring: Optional[Ring] = None,
                         **compile_kwargs) -> CordicResult:
    """Vector a stream of points: magnitude on x, angle accumulated on z.

    Bit-exact against :func:`repro.kernels.reference.cordic_vector`
    applied per sample.
    """
    if zs is None:
        zs = [0] * len(list(xs))
    return _run(vectoring_graph(iterations), xs, ys, zs, iterations,
                ring, compile_kwargs)
