"""Tests for the §5.1 raw-power arithmetic."""

import pytest

from repro.analysis.mips import (
    comparative_summary,
    measured_mips,
    measured_mops,
    ring_peak_mips,
    ring_peak_mops,
    theoretical_bandwidth_bytes_per_s,
)
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.errors import SimulationError


class TestPaperNumbers:
    def test_ring8_is_1600_mips(self):
        """§5.1: 'a maximal computing power of 1600 MIPS at the typical
        200 MHz evaluated functional frequency'."""
        assert ring_peak_mips(8) == 1600.0

    def test_ring8_peak_mops(self):
        assert ring_peak_mops(8) == 3200.0

    def test_bandwidth_about_3gb(self):
        assert theoretical_bandwidth_bytes_per_s(8) == pytest.approx(3.2e9)

    def test_summary_keys(self):
        summary = comparative_summary()
        assert summary["ring_peak_mips"] == 1600.0
        assert summary["cpu_mips"] == pytest.approx(400, rel=0.02)
        assert summary["speedup_vs_cpu"] == pytest.approx(4.0, rel=0.02)
        assert summary["theoretical_bw_gb_s"] == pytest.approx(3.2)
        assert summary["pci_bw_gb_s"] == 0.25

    def test_scales_linearly_with_dnodes(self):
        assert ring_peak_mips(64) == 8 * ring_peak_mips(8)


class TestMeasured:
    def test_measured_mips_from_activity(self):
        ring = make_ring(8)
        # one busy Dnode out of eight
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.ADD, Source.ZERO, Source.IMM, Dest.OUT, imm=1))
        ring.run(10)
        assert measured_mips(ring) == pytest.approx(200.0)

    def test_measured_mops_counts_dual_ops(self):
        ring = make_ring(8)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MAC, Source.ZERO, Source.ZERO, Dest.R0))
        ring.run(10)
        assert measured_mops(ring) == pytest.approx(400.0)

    def test_measured_requires_run(self):
        with pytest.raises(SimulationError):
            measured_mips(make_ring(8))

    def test_fully_busy_ring_hits_peak(self):
        ring = make_ring(8)
        for dn in ring.all_dnodes():
            ring.config.write_microword(dn.layer, dn.position, MicroWord(
                Opcode.ADD, Source.ZERO, Source.IMM, Dest.OUT, imm=1))
        ring.run(5)
        assert measured_mips(ring) == pytest.approx(ring_peak_mips(8))


class TestValidation:
    def test_counts_positive(self):
        with pytest.raises(SimulationError):
            ring_peak_mips(0)
        with pytest.raises(SimulationError):
            theoretical_bandwidth_bytes_per_s(8, frequency_hz=0)
