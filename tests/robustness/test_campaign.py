"""FaultCampaign: seeded sweeps with golden-run verification."""

import pytest

from repro.errors import ConfigurationError
from repro.robustness import FaultCampaign, FaultKind

from tests.robustness.conftest import ENGINES, busy_factory

CYCLES = 40
EVERY = 8


def run_campaign(seed=7, trials=6, kinds=None, **ring_kwargs):
    return FaultCampaign(busy_factory(**ring_kwargs), cycles=CYCLES,
                         checkpoint_every=EVERY, seed=seed,
                         trials=trials, kinds=kinds).run()


@pytest.mark.parametrize("engine,kwargs", ENGINES,
                         ids=[name for name, _ in ENGINES])
class TestPerEngine:
    def test_every_detected_fault_recovers(self, engine, kwargs):
        result = run_campaign(**kwargs)
        assert result.all_recovered
        assert result.detected > 0, "campaign never landed a visible fault"

    def test_same_seed_same_trace(self, engine, kwargs):
        assert run_campaign(seed=11, **kwargs).trace() == \
            run_campaign(seed=11, **kwargs).trace()

    def test_different_seeds_differ(self, engine, kwargs):
        assert run_campaign(seed=1, trials=8, **kwargs).trace() != \
            run_campaign(seed=2, trials=8, **kwargs).trace()


class TestCrossEngine:
    def test_trace_is_engine_invariant(self):
        """Same seed, same configuration -> the same faults are planned,
        detected at the same boundaries, and recovered identically on
        every engine.  The recovery trace is a property of the
        architecture, not of the execution backend."""
        traces = {name: FaultCampaign(busy_factory(**kwargs),
                                      cycles=CYCLES,
                                      checkpoint_every=EVERY, seed=7,
                                      trials=6).run().trace()
                  for name, kwargs in ENGINES}
        reference = traces["interpreter"]
        for name, trace in traces.items():
            assert trace == reference, f"{name} trace diverged"


class TestMechanics:
    def test_config_faults_always_detected(self):
        result = run_campaign(trials=8,
                              kinds=[FaultKind.CONFIG_WORD,
                                     FaultKind.STUCK_DNODE])
        applied = [t for t in result.trials if t.applied]
        assert applied, "no config fault landed"
        assert all(t.detected for t in applied), \
            "an applied configuration fault escaped digest detection"
        assert result.all_recovered

    def test_rollback_lands_on_prior_checkpoint(self):
        result = run_campaign(trials=10)
        for t in result.trials:
            if not t.detected:
                continue
            assert t.rollback_cycle % EVERY == 0
            assert t.rollback_cycle < t.detection_cycle
            assert t.replayed_cycles == \
                t.detection_cycle - t.rollback_cycle

    def test_summary_counts(self):
        result = run_campaign(trials=10)
        assert result.injected == 10
        assert result.detected + result.masked == result.injected
        summary = result.summary()
        assert summary["recovered"] == result.recovered
        assert summary["all_recovered"] is True

    def test_campaign_counters_accumulate_on_trial_rings(self):
        # Each trial ring sees exactly one injection; the golden ring
        # sees none.  Counters live on the rings, so just sanity-check
        # the trace length here.
        result = run_campaign(trials=4)
        assert len(result.trace()) == 4

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError, match="window"):
            FaultCampaign(busy_factory(), cycles=0, checkpoint_every=4,
                          seed=1)
        with pytest.raises(ConfigurationError, match="trial"):
            FaultCampaign(busy_factory(), cycles=8, checkpoint_every=4,
                          seed=1, trials=0)
