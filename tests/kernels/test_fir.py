"""Tests for the FIR fabric mappings against the golden reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ring import Ring, RingGeometry
from repro.errors import ConfigurationError
from repro.kernels.fir import shared_fir, shared_fir_program, spatial_fir
from repro.kernels.reference import fir as ref_fir

SIGNAL = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, -8, 9, 7]

taps_lists = st.lists(st.integers(min_value=-8, max_value=8),
                      min_size=1, max_size=4)
small_signals = st.lists(st.integers(min_value=-50, max_value=50),
                         min_size=1, max_size=24)


class TestSpatialFir:
    @pytest.mark.parametrize("taps", [
        [1], [2, -3], [1, 2, 3], [2, -3, 1, 4],
        [1, 2, 3, 4, 5, 6, 7, 8],
    ])
    def test_matches_reference(self, taps):
        result = spatial_fir(taps, SIGNAL)
        assert result.outputs == ref_fir(SIGNAL, taps)

    def test_one_sample_per_cycle(self):
        result = spatial_fir([1, 2, 3], SIGNAL)
        assert result.samples_per_cycle == 1.0
        assert result.cycles_per_sample == 1.0

    def test_uses_two_dnodes_per_tap(self):
        result = spatial_fir([1, 2, 3], SIGNAL)
        assert result.dnodes_used == 6

    def test_too_many_taps_for_ring(self):
        ring = Ring(RingGeometry.ring(8))  # 4 layers
        with pytest.raises(ConfigurationError, match="1..4"):
            spatial_fir([1] * 5, SIGNAL, ring=ring)

    def test_impulse_recovers_taps(self):
        taps = [5, -2, 7, 1]
        impulse = [1] + [0] * 7
        assert spatial_fir(taps, impulse).outputs[:4] == taps

    @given(taps_lists, small_signals)
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, taps, signal):
        assert spatial_fir(taps, signal).outputs == ref_fir(signal, taps)


class TestSharedFir:
    @pytest.mark.parametrize("taps", [[1], [2, -3], [1, 2, 3],
                                      [2, -3, 1, 4]])
    def test_matches_reference(self, taps):
        result = shared_fir(taps, SIGNAL)
        assert result.outputs == ref_fir(SIGNAL, taps)

    def test_single_dnode(self):
        assert shared_fir([1, 2], SIGNAL).dnodes_used == 1

    def test_throughput_is_2t_minus_1(self):
        for t in (2, 3, 4):
            result = shared_fir(list(range(1, t + 1)), SIGNAL)
            assert result.cycles_per_sample == 2 * t - 1

    def test_program_fits_local_slots(self):
        for t in (1, 2, 3, 4):
            program = shared_fir_program([1] * t)
            assert len(program) <= 8

    def test_rejects_more_than_4_taps(self):
        with pytest.raises(ConfigurationError, match="1..4"):
            shared_fir([1] * 5, SIGNAL)

    @given(taps_lists, small_signals)
    @settings(max_examples=15, deadline=None)
    def test_property_matches_reference(self, taps, signal):
        assert shared_fir(taps, signal).outputs == ref_fir(signal, taps)


class TestResourceSharingTradeoff:
    def test_shared_uses_fewer_dnodes_but_more_cycles(self):
        """The paper's resource-sharing argument: a 4-tap RIF on one
        Dnode instead of eight, at 1/7th the throughput."""
        taps = [2, -3, 1, 4]
        spatial = spatial_fir(taps, SIGNAL)
        shared = shared_fir(taps, SIGNAL)
        assert shared.outputs == spatial.outputs
        assert shared.dnodes_used == 1
        assert spatial.dnodes_used == 8
        assert shared.cycles_per_sample == 7
        assert spatial.cycles_per_sample == 1


class TestInterleavedFir:
    """Two independent filters multiplexed on one Dnode — the
    'multi-standard' operating mode."""

    def test_both_channels_match_reference(self):
        from repro.kernels.fir import interleaved_fir

        sig_a = [3, -1, 4, 1, -5, 9]
        sig_b = [2, 7, -3, 0, 8, -2]
        out_a, out_b = interleaved_fir([2, -3], [1, 4], sig_a, sig_b)
        assert out_a == ref_fir(sig_a, [2, -3])
        assert out_b == ref_fir(sig_b, [1, 4])

    def test_single_dnode_six_cycles_per_pair(self):
        from repro.core.ring import make_ring
        from repro.kernels.fir import interleaved_fir

        ring = make_ring(4)
        sig = [1, 2, 3]
        interleaved_fir([1, 0], [0, 1], sig, sig, ring=ring)
        assert ring.cycles == 6 * len(sig)

    def test_channels_are_independent(self):
        from repro.kernels.fir import interleaved_fir

        sig_a = [10, 20, 30, 40]
        zeros = [0, 0, 0, 0]
        out_a, out_b = interleaved_fir([1, 1], [1, 1], sig_a, zeros)
        assert out_a == ref_fir(sig_a, [1, 1])
        assert out_b == [0, 0, 0, 0]

    def test_requires_two_tap_filters(self):
        from repro.kernels.fir import interleaved_fir_program

        with pytest.raises(ConfigurationError, match="1..2 taps"):
            interleaved_fir_program([1, 2, 3], [1, 2])
        with pytest.raises(ConfigurationError, match="2-tap"):
            interleaved_fir_program([1], [1, 2])

    def test_equal_lengths_required(self):
        from repro.kernels.fir import interleaved_fir

        with pytest.raises(ConfigurationError, match="equal length"):
            interleaved_fir([1, 1], [1, 1], [1, 2], [1])
