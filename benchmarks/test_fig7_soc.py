"""Fig. 7 — the "foreseeable SoC".

Paper sketch: a 4 x 3 mm (12 mm^2) 0.18 um die integrating an ARM7TDMI
(0.54 mm^2) with a Ring-64 (3.4 mm^2) plus flash/converters — "a great
computation power/cost trade-off".  The benchmark budgets that die from
the calibrated area model and checks it closes, then quantifies the
power/cost claim.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, ring_peak_mips
from repro.tech.soc import ARM7TDMI_MM2, foreseeable_soc


def test_fig7_budget(benchmark):
    budget = benchmark(foreseeable_soc)
    assert budget.fits


def test_fig7_shape():
    budget = foreseeable_soc()
    rows = [[name, area] for name, area in budget.blocks]
    rows.append(["(free)", budget.free_mm2])
    emit(render_table(["block", "mm^2"], rows,
                      title="Fig. 7 (reproduced) — 12 mm^2 SoC budget"))

    assert budget.die_mm2 == 12.0
    assert budget.block_area("arm7tdmi") == ARM7TDMI_MM2
    assert budget.block_area("ring-64") == pytest.approx(3.4, rel=0.02)
    assert budget.fits


def test_fig7_power_cost_tradeoff():
    """The sketch's point: the Ring-64 adds 12.8 GMIPS of dataflow
    compute in ~6x the ARM7's area — two orders of magnitude more
    operations per mm^2 than the host CPU."""
    budget = foreseeable_soc()
    ring_mips = ring_peak_mips(64)
    arm7_mips = 60.0  # ~0.9 MIPS/MHz at 66 MHz, published ARM7 figure
    ring_density = ring_mips / budget.block_area("ring-64")
    arm_density = arm7_mips / ARM7TDMI_MM2
    assert ring_mips / arm7_mips > 100
    assert ring_density / arm_density > 30
