"""Tests for the fabric profiler."""

import pytest

from repro.compiler.profiler import profile_report, utilization_by_dnode
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.errors import SimulationError


def _half_busy_ring():
    ring = make_ring(8)
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.MAC, Source.ZERO, Source.ZERO, Dest.R0))
    ring.config.write_microword(1, 0, MicroWord(
        Opcode.MOV, Source.BUS, dst=Dest.OUT))
    ring.run(10)
    return ring


class TestUtilization:
    def test_busy_fraction_per_dnode(self):
        ring = _half_busy_ring()
        util = utilization_by_dnode(ring)
        assert util["D0.0"] == 1.0
        assert util["D1.0"] == 1.0
        assert util["D0.1"] == 0.0
        assert len(util) == 8

    def test_requires_a_run(self):
        with pytest.raises(SimulationError):
            utilization_by_dnode(make_ring(8))


class TestReport:
    def test_lists_busy_dnodes_only_by_default(self):
        report = profile_report(_half_busy_ring())
        assert "D0.0" in report and "D1.0" in report
        assert "D0.1" not in report

    def test_include_idle(self):
        report = profile_report(_half_busy_ring(), include_idle=True)
        assert "D0.1" in report

    def test_aggregates(self):
        report = profile_report(_half_busy_ring())
        assert "2/8 Dnodes busy" in report
        # 2 busy of 8 at 200 MHz -> 400 MIPS sustained
        assert "400 MIPS" in report
        assert "25.0%" in report

    def test_op_mix_columns(self):
        report = profile_report(_half_busy_ring())
        assert "muls" in report  # the MAC Dnode multiplied every cycle

    def test_requires_a_run(self):
        with pytest.raises(SimulationError):
            profile_report(make_ring(8))


class TestCompilerIntegration:
    def test_profile_of_compiled_program(self):
        from repro.compiler import DataflowGraph, compile_graph

        g = DataflowGraph()
        x = g.input(0)
        g.output(g.op("add", g.op("mul", x, g.const(3)), g.delay(x, 1)))
        prog = compile_graph(g)
        system = prog.build_system()
        prog.run([1, 2, 3, 4, 5], ring=system.ring)
        report = profile_report(system.ring)
        assert "3/4 Dnodes busy" in report  # mul + relay + add; 1 lane idle


class TestProfileWarmup:
    """Satellite: `Ring.profile(warmup=N)` runs N cycles before timing.

    The warm-up chunk pays plan compilation / engine-adoption cost
    outside the timed region, so the profile measures the plan-cache
    hit path — pinned by profiling the same ring twice and asserting the
    second session compiles nothing and runs fully on the fast path.
    """

    def test_warmup_cycles_excluded_from_profile(self):
        ring = _half_busy_ring()
        with ring.profile(warmup=10) as prof:
            ring.run(6)
        assert prof.total_cycles == 6
        assert ring.cycles == 10 + 6 + 10  # _half_busy_ring ran 10

    def test_warmup_measures_cache_hit_path(self):
        ring = _half_busy_ring()
        with ring.profile(warmup=8) as first:
            ring.run(16)
        with ring.profile(warmup=8) as second:
            ring.run(16)
        assert second.plan_compiles == 0
        assert second.compile_seconds == 0.0
        assert second.fastpath_fraction == 1.0
        assert second.interpreted_cycles == 0
        assert first.total_cycles == second.total_cycles == 16

    def test_negative_warmup_rejected(self):
        ring = _half_busy_ring()
        with pytest.raises(SimulationError):
            with ring.profile(warmup=-1):
                pass

    def test_default_warmup_is_zero(self):
        ring = _half_busy_ring()
        cycles = ring.cycles
        with ring.profile():
            pass
        assert ring.cycles == cycles


class TestMeasuredCyclesPerSecond:
    def test_positive_and_uses_best_of_repeats(self):
        from repro.compiler.profiler import measured_cycles_per_second

        ring = _half_busy_ring()
        rate = measured_cycles_per_second(ring, 64, repeats=2)
        assert rate > 0

    def test_rejects_empty_measurement(self):
        from repro.compiler.profiler import measured_cycles_per_second

        with pytest.raises(SimulationError):
            measured_cycles_per_second(_half_busy_ring(), 0)

    def test_warmup_defaults_to_quarter(self):
        from repro.compiler.profiler import measured_cycles_per_second

        ring = _half_busy_ring()
        begin = ring.cycles
        measured_cycles_per_second(ring, 100, warmup=None, repeats=1)
        assert ring.cycles == begin + 25 + 100

    def test_explicit_warmup_honoured(self):
        from repro.compiler.profiler import measured_cycles_per_second

        ring = _half_busy_ring()
        begin = ring.cycles
        measured_cycles_per_second(ring, 40, warmup=3, repeats=2)
        assert ring.cycles == begin + 2 * (3 + 40)

    def test_utilization_zero_cycle_dnode(self):
        """utilization_by_dnode guards the 0-cycle division branch."""
        ring = _half_busy_ring()
        ring.dnode(0, 1).stats.cycles = 0
        util = utilization_by_dnode(ring)
        assert util["D0.1"] == 0.0
