"""Model of the dedicated block-matching ASIC of Table 1 ([7]).

[7] A. Bugeja and W. Yang, "A Re-configurable VLSI Coprocessing System
for the Block Matching Algorithm", IEEE Trans. VLSI Systems, 1997 — a
2-D systolic array with one processing element per block pixel, which
evaluates **one candidate position per clock** once its pipeline is
full.

The functional result is an exact SAD search (it is a hard-wired exact
architecture); the cycle model is the systolic-array schedule:

    cycles = fill + candidates + drain

where *fill* is the array latency (the block dimension's worth of
loading plus the adder tree depth) and *drain* flushes the last
candidate.  Table 1's point is the order of magnitude: the ASIC is much
faster than the Ring but totally inflexible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.kernels.reference import full_search


@dataclass(frozen=True)
class AsicModel:
    """Cycle/area characteristics of the dedicated systolic matcher."""

    name: str = "Bugeja/Yang BMA coprocessor [7]"
    frequency_hz: float = 100e6      # publication-era clock
    pes: int = 64                    # one PE per block pixel

    def fill_cycles(self, block_h: int, block_w: int) -> int:
        """Pipeline fill: load the block + adder-tree latency."""
        return block_h * block_w // block_w + block_h \
            + math.ceil(math.log2(block_h * block_w))

    def match_cycles(self, n_candidates: int, block_h: int = 8,
                     block_w: int = 8) -> int:
        """Total cycles for a full search of *n_candidates* positions."""
        fill = self.fill_cycles(block_h, block_w)
        drain = block_h
        return fill + n_candidates + drain


@dataclass
class AsicResult:
    """Outcome of the modelled ASIC run."""

    best: Tuple[int, int]
    best_sad: int
    sad_map: np.ndarray
    cycles: int


def asic_block_match(reference_block: np.ndarray,
                     search_area: np.ndarray,
                     model: AsicModel = AsicModel()) -> AsicResult:
    """Full search on the modelled ASIC: exact SADs, systolic schedule."""
    best, best_sad, sad_map = full_search(np.asarray(reference_block),
                                          np.asarray(search_area))
    ny, nx = sad_map.shape
    bh, bw = np.asarray(reference_block).shape
    cycles = model.match_cycles(ny * nx, bh, bw)
    return AsicResult(best=best, best_sad=best_sad, sad_map=sad_map,
                      cycles=cycles)
