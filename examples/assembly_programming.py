#!/usr/bin/env python
"""Programming the Systolic Ring in its own assembly language.

Writes a complete two-level application — fabric configuration planes in
Ring-level assembly plus RISC management code — assembles it to binary
object code, reloads the binary, and runs it: a signal chain whose gain
the controller retunes on the fly (the per-cycle dynamical
reconfiguration the paper's conclusion calls the key to mapping
resource-shared filters).

Run:  python examples/assembly_programming.py
"""

from repro import word
from repro.asm import assemble, load_system
from repro.asm.objcode import ObjectCode

SOURCE = """
; ---------------------------------------------------------------
; Adaptive gain stage: y = clamp(gain * x), gain retuned mid-stream
; ---------------------------------------------------------------
.ring boot
dnode 0.0 global
    mul out, in1, #1          ; gain stage, starts at 1x
dnode 1.0 global
    addsat out, in1, #0       ; saturating output stage
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- up0

.risc
    cfgword gain2, mul out, in1, #2
    cfgword gain4, mul out, in1, #4
    cfgword gain8, mul out, in1, #8
start:  waiti 4               ; 4 samples at 1x
        cfgdi d0.0, gain2     ; the cfgdi cycle already computes at 2x
        waiti 3               ; ... 4 samples at 2x in total
        cfgdi d0.0, gain4
        waiti 3               ; 4 samples at 4x
        cfgdi d0.0, gain8
        waiti 3               ; 4 samples at 8x
        halt
"""


def main() -> None:
    obj = assemble(SOURCE, layers=4, width=2)
    blob = obj.to_bytes()
    print(f"assembled: {len(obj.program)} controller instructions, "
          f"{len(obj.cfg_rom)} configuration-ROM entries, "
          f"{len(blob)} object-code bytes")
    for name, addr in sorted(obj.symbols.items()):
        print(f"  symbol {name} -> controller address {addr}")

    system = load_system(ObjectCode.from_bytes(blob))
    samples = [100] * 18
    system.data.stream(0, samples)
    tap = system.data.add_tap(1, 0, skip=1, limit=16)
    system.run_until_halt(drain=2)

    gains = [word.to_signed(v) // 100 for v in tap.samples]
    print(f"\nconstant input of 100, observed gain per sample:\n  {gains}")
    assert gains == [1] * 4 + [2] * 4 + [4] * 4 + [8] * 4
    print("the controller rewrote the Dnode microword three times "
          "mid-stream - dynamic reconfiguration at work")


if __name__ == "__main__":
    main()
