"""Combinational model of the Dnode ALU + hardwired multiplier.

The paper's Dnode datapath (Fig. 3) pairs a 16-bit ALU with a hardwired
multiplier that can be "associated in a fully combinational way", so dual
operations such as multiply-accumulate complete in a single cycle.  This
module is purely functional: :func:`execute_op` maps ``(opcode, a, b, acc)``
to a 16-bit result with no state, which keeps it trivially property-testable.

All values are raw 16-bit bus words (see :mod:`repro.word`).  Signed
interpretation is two's complement.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro import word
from repro.core.isa import Opcode
from repro.errors import SimulationError


def _add(a: int, b: int) -> int:
    return word.wrap(a + b)


def _sub(a: int, b: int) -> int:
    return word.wrap(a - b)


def _mul_full(a: int, b: int) -> int:
    """Signed 16x16 -> 32-bit product (Python int)."""
    return word.to_signed(a) * word.to_signed(b)


def _mul(a: int, b: int) -> int:
    return _mul_full(a, b) & word.MASK


def _mulh(a: int, b: int) -> int:
    return (_mul_full(a, b) >> word.WIDTH) & word.MASK


def _shift_amount(b: int) -> int:
    """Hardware shifters use the low 4 bits of the amount operand."""
    return b & (word.WIDTH - 1)


def _shl(a: int, b: int) -> int:
    return word.wrap(a << _shift_amount(b))


def _shr(a: int, b: int) -> int:
    return (a & word.MASK) >> _shift_amount(b)


def _asr(a: int, b: int) -> int:
    return word.from_signed(word.to_signed(a) >> _shift_amount(b))


def _abs(a: int) -> int:
    # Like hardware, |INT_MIN| wraps back to INT_MIN (0x8000).
    return word.wrap(abs(word.to_signed(a)))


def _absdiff(a: int, b: int) -> int:
    return word.wrap(abs(word.to_signed(a) - word.to_signed(b)))


def _min(a: int, b: int) -> int:
    return a if word.to_signed(a) <= word.to_signed(b) else b


def _max(a: int, b: int) -> int:
    return a if word.to_signed(a) >= word.to_signed(b) else b


def _addsat(a: int, b: int) -> int:
    return word.saturate_signed(word.to_signed(a) + word.to_signed(b))


def _subsat(a: int, b: int) -> int:
    return word.saturate_signed(word.to_signed(a) - word.to_signed(b))


def _cmpeq(a: int, b: int) -> int:
    return 1 if a == b else 0


def _cmplt(a: int, b: int) -> int:
    return 1 if word.to_signed(a) < word.to_signed(b) else 0


def _avg2(a: int, b: int) -> int:
    return word.from_signed((word.to_signed(a) + word.to_signed(b)) >> 1)


_UNARY: Dict[Opcode, Callable[[int], int]] = {
    Opcode.MOV: lambda a: a,
    Opcode.NOT: lambda a: (~a) & word.MASK,
    Opcode.NEG: lambda a: word.wrap(-word.to_signed(a)),
    Opcode.ABS: _abs,
}

_BINARY: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: _add,
    Opcode.SUB: _sub,
    Opcode.MUL: _mul,
    Opcode.MULH: _mulh,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: _shl,
    Opcode.SHR: _shr,
    Opcode.ASR: _asr,
    Opcode.ABSDIFF: _absdiff,
    Opcode.MIN: _min,
    Opcode.MAX: _max,
    Opcode.ADDSAT: _addsat,
    Opcode.SUBSAT: _subsat,
    Opcode.CMPEQ: _cmpeq,
    Opcode.CMPLT: _cmplt,
    Opcode.AVG2: _avg2,
}


def unary_handler(op: Opcode) -> Callable[[int], int]:
    """The combinational function of a unary opcode (fast-path compiler).

    Raises:
        SimulationError: if *op* is not a simple unary operation.
    """
    handler = _UNARY.get(op)
    if handler is None:
        raise SimulationError(f"opcode {op!r} has no unary handler")
    return handler


def binary_handler(op: Opcode) -> Callable[[int, int], int]:
    """The combinational function of a binary opcode (fast-path compiler).

    Raises:
        SimulationError: if *op* is not a simple binary operation.
    """
    handler = _BINARY.get(op)
    if handler is None:
        raise SimulationError(f"opcode {op!r} has no binary handler")
    return handler


def mul_full(a: int, b: int) -> int:
    """Signed 16x16 -> full-precision product (fast-path compiler)."""
    return _mul_full(a, b)


def execute_op(op: Opcode, a: int, b: int = 0, acc: int = 0,
               imm: int = 0) -> int:
    """Evaluate one Dnode operation combinationally.

    Args:
        op: the opcode to execute.
        a: first operand (raw 16-bit value).
        b: second operand (raw 16-bit value, ignored by unary ops).
        acc: current value of the destination register, consumed by the
            accumulating opcodes (``MAC``/``MACS``).
        imm: the microword's immediate field, consumed as the multiplier
            coefficient by ``MADD``/``MSUB``.

    Returns:
        The raw 16-bit result.  ``NOP`` returns 0 (nothing observes it).

    Raises:
        SimulationError: for an opcode with no functional model (cannot
            happen for opcodes built through the public ISA).
    """
    word.check(a, "operand A")
    word.check(b, "operand B")
    word.check(acc, "accumulator")
    word.check(imm, "immediate")
    if op is Opcode.NOP:
        return 0
    if op is Opcode.MAC:
        return word.wrap(_mul_full(a, b) + word.to_signed(acc))
    if op is Opcode.MACS:
        return word.saturate_signed(_mul_full(a, b) + word.to_signed(acc))
    if op is Opcode.MADD:
        return word.wrap(word.to_signed(a) + _mul_full(b, imm))
    if op is Opcode.MSUB:
        return word.wrap(word.to_signed(a) - _mul_full(b, imm))
    handler = _UNARY.get(op)
    if handler is not None:
        return handler(a)
    handler_b = _BINARY.get(op)
    if handler_b is not None:
        return handler_b(a, b)
    raise SimulationError(f"opcode {op!r} has no functional model")
