"""Pre-decoded steady-state execution engine for the ring fabric.

The paper's scalability argument (§4.2) rests on the configuration being
*static between controller writes*: the datapath does no per-cycle decode —
routing, microwords and modes are latched state, and the clock merely moves
data through them.  The generic :meth:`~repro.core.ring.Ring.step`
interpreter re-derives all of that every cycle (enum dispatch through the
switch routing, a fresh ``DnodeInputs`` record and FIFO/Rp accessor
closures per Dnode, O(depth) pipeline shifts).  This module performs that
derivation **once per configuration**, compiling the fabric into flat
per-Dnode thunks:

* every operand fetch is resolved to a direct closure over the concrete
  upstream Dnode, feedback-pipeline slot, FIFO deque, bus or host channel
  it reads — no routing tables or enum dispatch on the cycle path;
* execute/stage/commit work is specialised per microword (per local-
  sequencer slot in local mode), so idle Dnodes cost nothing at all;
* feedback pipelines advance by one ring-buffer index write per lane.

Semantics are bit-identical to the interpreter for every observable state
element (registers, OUT latches, pipelines, FIFOs, counters, statistics,
underflow accounting, and error behaviour on non-aborted cycles); the
equivalence suite in ``tests/core/test_fastpath_equivalence.py`` proves it
on randomised programs.  The only divergence is *inside* a cycle aborted
by a strict-FIFO error: the interpreter raises before shifting the
feedback pipelines, the fast path after (and per-Dnode ``stats.cycles``
reflects completed cycles only).

The :class:`~repro.core.ring.Ring` owns plan lifetime: every configuration
mutation (Dnode microword/mode, local-sequencer slot/LIMIT, switch route)
invalidates the current plan, the next cycle falls back to the
interpreter, and a new plan is compiled once the configuration has been
stable for a full cycle — so controller-driven hardware multiplexing
(a reconfiguration every cycle) never pays compilation overhead.

Observability composes with the plan rather than disabling it: a *sampled*
observer (a :class:`~repro.analysis.trace.SignalTrace` with a capture
interval or cycle window) lets :meth:`~repro.core.ring.Ring.run` chunk-run
the compiled thunks between capture points — ``plan.run(n)`` up to the
next due cycle, one observer dispatch, repeat — so traced steady state
keeps batched execution.  Only an every-cycle observer forces per-cycle
dispatch.  Because a chunk boundary is an ordinary post-commit point, the
captured samples are bit-identical to an interpreted (or every-cycle
traced) run decimated to the same schedule.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro import word
from repro.core.alu import binary_handler, unary_handler
from repro.core.dnode import (
    Dnode,
    DnodeMode,
    _MULTIPLY_OPS,
    _OP_COST,
)
from repro.core.isa import (
    ACCUMULATING_OPS,
    Dest,
    Flag,
    MicroWord,
    Opcode,
    Source,
)
from repro.core.switch import PortKind, Switch
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ring import Ring

#: Signature of every compiled per-cycle callable: ``(bus, host_in)``.
CycleThunk = Callable[[int, Optional[Callable[[int], int]]], object]


class CompiledPlan:
    """One fabric configuration compiled to flat per-cycle thunks."""

    __slots__ = ("_ring", "_evals", "_shifts", "_commits", "_stats")

    def __init__(self, ring: "Ring", evals, shifts, commits, stats):
        self._ring = ring
        self._evals = tuple(evals)
        self._shifts = tuple(shifts)
        self._commits = tuple(commits)
        self._stats = tuple(stats)

    def run(self, cycles: int, bus: int,
            host_in: Optional[Callable[[int], int]]) -> int:
        """Execute *cycles* fabric clocks through the compiled thunks.

        The caller (the ring) has already validated ``bus`` and checked
        that this plan is current.  Returns the number of cycles fully
        executed (== *cycles* unless an exception aborts the run).
        """
        ring = self._ring
        evals = self._evals
        shifts = self._shifts
        commits = self._commits
        executed = 0
        try:
            for _ in range(cycles):
                for ev in evals:
                    ev(bus, host_in)
                for sh in shifts:
                    sh()
                for cm in commits:
                    cm()
                ring.cycles += 1
                executed += 1
        finally:
            if executed:
                for stats in self._stats:
                    stats.cycles += executed
        return executed


# ----------------------------------------------------------------------
# Operand-fetch compilation
# ----------------------------------------------------------------------


def _const_getter(value: int) -> CycleThunk:
    return lambda bus, host_in, _v=value: _v


def _up_getter(upstream: Dnode) -> CycleThunk:
    return lambda bus, host_in, _u=upstream: _u._out


def _self_getter(dn: Dnode) -> CycleThunk:
    return lambda bus, host_in, _d=dn: _d._out


def _bus_getter() -> CycleThunk:
    return lambda bus, host_in: bus


def _reg_getter(dn: Dnode, index: int) -> CycleThunk:
    return lambda bus, host_in, _v=dn.regs._values, _i=index: _v[_i]


def _rp_getter(sw: Switch, stage: int, lane: int) -> CycleThunk:
    """Feedback tap read, resolved to a rotating-buffer index."""
    if not (1 <= stage <= sw.pipeline_depth and 1 <= lane <= sw.width):
        # Out-of-range taps are a runtime error in the interpreter (the
        # geometry can have a shallower pipeline than the ISA's Rp range);
        # reproduce the identical error lazily at read time.
        return lambda bus, host_in, _s=sw, _st=stage, _ln=lane: \
            _s.rp_read(_st, _ln)
    pipe = sw._pipes[lane - 1]
    offset = stage - 1
    depth = sw.pipeline_depth
    return lambda bus, host_in, _p=pipe, _s=sw, _o=offset, _d=depth: \
        _p[(_s._head + _o) % _d]


def _fifo_getter(ring: "Ring", dn: Dnode, channel: int) -> CycleThunk:
    queue = ring.fifo(dn.layer, dn.position, channel)
    check = word.check
    what = f"{dn.name} FIFO{channel}"

    def get(bus, host_in, _q=queue, _r=ring, _l=dn.layer, _p=dn.position,
            _c=channel, _check=check, _what=what):
        if _q:
            return _check(_q[0], _what)
        if _r.strict_fifos:
            raise SimulationError(
                f"D{_l}.{_p} read empty FIFO{_c} at cycle {_r.cycles}"
            )
        _r.fifo_underflows += 1
        return 0

    return get


def _host_fetch(sw: Switch, pos: int, port: int, channel: int,
                cell: List[int], slot: int) -> CycleThunk:
    """Eager direct-port read: one host call per routed port per cycle."""
    check = word.check

    def fetch(bus, host_in, _sw=sw, _pos=pos, _port=port, _ch=channel,
              _cell=cell, _slot=slot, _check=check):
        if host_in is None:
            raise SimulationError(
                f"switch {_sw.index} routes port {_port} of position "
                f"{_pos} to host channel {_ch}, but no host "
                f"reader was supplied"
            )
        _cell[_slot] = _check(host_in(_ch), f"host channel {_ch}")

    return fetch


def _compile_ports(ring: "Ring", sw: Switch, upstream: List[Dnode],
                   pos: int):
    """Resolve both switch input ports of one downstream Dnode.

    Returns ``(getters, eagers)``: per-port value getters for operand use,
    plus the fetches that must run every cycle regardless of use because
    they are observable — host-port reads (stream underrun accounting and
    the missing-reader error) and out-of-range feedback taps, which the
    interpreter resolves eagerly for every routed port.
    """
    getters = {}
    eagers = []
    cell = [0, 0]
    for port in (1, 2):
        src = sw.config.source_for(pos, port)
        kind = src.kind
        if kind is PortKind.ZERO:
            getters[port] = _const_getter(0)
        elif kind is PortKind.UP:
            getters[port] = _up_getter(upstream[src.index])
        elif kind is PortKind.RP:
            getter = _rp_getter(sw, src.index, src.lane)
            getters[port] = getter
            if not (1 <= src.index <= sw.pipeline_depth
                    and 1 <= src.lane <= sw.width):
                eagers.append(getter)
        elif kind is PortKind.BUS:
            getters[port] = _bus_getter()
        elif kind is PortKind.HOST:
            slot = port - 1
            eagers.append(_host_fetch(sw, pos, port, src.index, cell, slot))
            getters[port] = (
                lambda bus, host_in, _cell=cell, _slot=slot: _cell[_slot])
        else:  # pragma: no cover - exhaustive over PortKind
            raise SimulationError(f"unhandled port source {src!r}")
    return getters, eagers


def _operand_getter(ring: "Ring", dn: Dnode, sw: Switch, mw: MicroWord,
                    src: Source, port_getters) -> CycleThunk:
    if src <= Source.R3:
        return _reg_getter(dn, int(src))
    if src is Source.IN1:
        return port_getters[1]
    if src is Source.IN2:
        return port_getters[2]
    if src is Source.FIFO1:
        return _fifo_getter(ring, dn, 1)
    if src is Source.FIFO2:
        return _fifo_getter(ring, dn, 2)
    if src is Source.BUS:
        return _bus_getter()
    if src is Source.IMM:
        return _const_getter(mw.imm)
    if src is Source.SELF:
        return _self_getter(dn)
    if src is Source.ZERO:
        return _const_getter(0)
    if src.is_feedback:
        return _rp_getter(sw, src.feedback_stage, src.feedback_lane)
    raise SimulationError(f"unhandled source {src!r}")


# ----------------------------------------------------------------------
# Execute/stage compilation
# ----------------------------------------------------------------------


def _compile_compute(dn: Dnode, mw: MicroWord, get_a: CycleThunk,
                     get_b: Optional[CycleThunk]) -> CycleThunk:
    """Specialise the combinational result function of one microword."""
    op = mw.op
    to_signed = word.to_signed
    mask = word.MASK
    if op in ACCUMULATING_OPS:
        vals = dn.regs._values
        di = int(mw.dst)
        if op is Opcode.MAC:
            def compute(bus, host_in, _ga=get_a, _gb=get_b, _v=vals, _i=di,
                        _ts=to_signed, _m=mask):
                return (_ts(_ga(bus, host_in)) * _ts(_gb(bus, host_in))
                        + _ts(_v[_i])) & _m
        else:  # MACS
            sat = word.saturate_signed
            def compute(bus, host_in, _ga=get_a, _gb=get_b, _v=vals, _i=di,
                        _ts=to_signed, _sat=sat):
                return _sat(_ts(_ga(bus, host_in)) * _ts(_gb(bus, host_in))
                            + _ts(_v[_i]))
        return compute
    if op is Opcode.MADD or op is Opcode.MSUB:
        coeff = to_signed(mw.imm)
        if op is Opcode.MADD:
            def compute(bus, host_in, _ga=get_a, _gb=get_b, _c=coeff,
                        _ts=to_signed, _m=mask):
                return (_ts(_ga(bus, host_in))
                        + _ts(_gb(bus, host_in)) * _c) & _m
        else:
            def compute(bus, host_in, _ga=get_a, _gb=get_b, _c=coeff,
                        _ts=to_signed, _m=mask):
                return (_ts(_ga(bus, host_in))
                        - _ts(_gb(bus, host_in)) * _c) & _m
        return compute
    if mw.is_binary:
        fn = binary_handler(op)
        return lambda bus, host_in, _f=fn, _ga=get_a, _gb=get_b: \
            _f(_ga(bus, host_in), _gb(bus, host_in))
    fn = unary_handler(op)
    return lambda bus, host_in, _f=fn, _ga=get_a: _f(_ga(bus, host_in))


def _compile_body(ring: "Ring", dn: Dnode, sw: Switch, mw: MicroWord,
                  port_getters) -> Optional[CycleThunk]:
    """Compile the evaluate-phase work of one microword.

    Returns None when the word does nothing observable during evaluation
    (a NOP — its pop requests, if any, are handled at commit).
    """
    if mw.op is Opcode.NOP:
        return None
    get_a = _operand_getter(ring, dn, sw, mw, mw.src_a, port_getters)
    get_b = None
    if mw.is_binary:
        get_b = _operand_getter(ring, dn, sw, mw, mw.src_b, port_getters)
    compute = _compile_compute(dn, mw, get_a, get_b)

    stats = dn.stats
    cost = _OP_COST.get(mw.op, 1)
    count_mul = mw.op in _MULTIPLY_OPS
    rf = dn.regs
    di = int(mw.dst) if mw.dst.is_register else None
    to_out = mw.dst is Dest.OUT or bool(mw.flags & Flag.WRITE_OUT)

    if di is not None and to_out:
        def body(bus, host_in, _s=stats, _c=cost, _mul=count_mul,
                 _f=compute, _rf=rf, _i=di, _d=dn):
            _s.instructions += 1
            _s.arithmetic_ops += _c
            if _mul:
                _s.multiplies += 1
            r = _f(bus, host_in)
            _rf._pending_index = _i
            _rf._pending_value = r
            _d._out_pending = r
    elif di is not None:
        def body(bus, host_in, _s=stats, _c=cost, _mul=count_mul,
                 _f=compute, _rf=rf, _i=di):
            _s.instructions += 1
            _s.arithmetic_ops += _c
            if _mul:
                _s.multiplies += 1
            _rf._pending_value = _f(bus, host_in)
            _rf._pending_index = _i
    elif to_out:
        def body(bus, host_in, _s=stats, _c=cost, _mul=count_mul,
                 _f=compute, _d=dn):
            _s.instructions += 1
            _s.arithmetic_ops += _c
            if _mul:
                _s.multiplies += 1
            _d._out_pending = _f(bus, host_in)
    else:
        def body(bus, host_in, _s=stats, _c=cost, _mul=count_mul,
                 _f=compute):
            _s.instructions += 1
            _s.arithmetic_ops += _c
            if _mul:
                _s.multiplies += 1
            _f(bus, host_in)
    return body


# ----------------------------------------------------------------------
# Commit-phase compilation
# ----------------------------------------------------------------------


def _pops_of(mw: MicroWord) -> tuple:
    pops = []
    if mw.flags & Flag.POP_FIFO1:
        pops.append(1)
    if mw.flags & Flag.POP_FIFO2:
        pops.append(2)
    return tuple(pops)


def _pop_thunk(ring: "Ring", dn: Dnode, channel: int) -> Callable[[], None]:
    """One FIFO pop with the fabric's landed/underflow accounting."""
    queue = ring.fifo(dn.layer, dn.position, channel)
    stats = dn.stats

    def pop(_q=queue, _r=ring, _s=stats, _l=dn.layer, _p=dn.position,
            _c=channel):
        if _q:
            _q.popleft()
            _s.fifo_pops += 1
        elif _r.strict_fifos:
            raise SimulationError(
                f"D{_l}.{_p} popped empty FIFO{_c} at cycle {_r.cycles}"
            )
        else:
            _r.fifo_underflows += 1

    return pop


def _out_commit(dn: Dnode) -> Callable[[], None]:
    def commit_out(_d=dn):
        p = _d._out_pending
        if p is not None:
            _d._out = p
            _d._out_pending = None
    return commit_out


def _compile_commit(ring: "Ring", dn: Dnode,
                    active_words: List[MicroWord],
                    is_local: bool) -> Optional[Callable[[], None]]:
    executing = [mw for mw in active_words if mw.op is not Opcode.NOP]
    writes_reg = any(mw.dst.is_register for mw in executing)
    writes_out = any(mw.dst is Dest.OUT or mw.flags & Flag.WRITE_OUT
                     for mw in executing)
    pops_by_word = [_pops_of(mw) for mw in active_words]
    any_pops = any(pops_by_word)

    actions: List[Callable[[], None]] = []
    if writes_reg:
        actions.append(dn.regs.commit)
    if writes_out:
        actions.append(_out_commit(dn))
    if is_local:
        lc = dn.local
        if any_pops:
            # Pops belong to the slot that executed this cycle — the
            # counter value *before* the sequencer advances.
            table = tuple(
                tuple(_pop_thunk(ring, dn, ch) for ch in pops)
                for pops in pops_by_word
            )

            def advance_and_pop(_lc=lc, _t=table):
                c = _lc._counter
                _lc._counter = (c + 1) % _lc._limit
                for pop in _t[c]:
                    pop()

            actions.append(advance_and_pop)
        else:
            def advance(_lc=lc):
                _lc._counter = (_lc._counter + 1) % _lc._limit
            actions.append(advance)
    elif any_pops:
        for ch in pops_by_word[0]:
            actions.append(_pop_thunk(ring, dn, ch))

    if not actions:
        return None
    if len(actions) == 1:
        return actions[0]
    acts = tuple(actions)

    def commit(_a=acts):
        for action in _a:
            action()

    return commit


# ----------------------------------------------------------------------
# Plan assembly
# ----------------------------------------------------------------------


def _make_shift(sw: Switch, upstream: List[Dnode]) -> Callable[[], None]:
    pairs = tuple(zip(sw._pipes, upstream))
    depth = sw.pipeline_depth

    def shift(_sw=sw, _pairs=pairs, _d=depth):
        head = (_sw._head - 1) % _d
        _sw._head = head
        for pipe, up in _pairs:
            pipe[head] = up._out

    return shift


def _wrap_eagers(eagers, core: Optional[CycleThunk]) -> Optional[CycleThunk]:
    if not eagers:
        return core
    if core is None and len(eagers) == 1:
        return eagers[0]
    fetches = tuple(eagers)
    if core is None:
        def ev(bus, host_in, _f=fetches):
            for fetch in _f:
                fetch(bus, host_in)
        return ev

    def ev(bus, host_in, _f=fetches, _core=core):
        for fetch in _f:
            fetch(bus, host_in)
        _core(bus, host_in)
    return ev


def _compile_dnode(ring: "Ring", dn: Dnode, sw: Switch,
                   upstream: List[Dnode]):
    """Compile one Dnode into (eval thunk, commit thunk), either None."""
    port_getters, eagers = _compile_ports(ring, sw, upstream, dn.position)
    if dn.mode is DnodeMode.LOCAL:
        limit = dn.local.limit
        active_words = dn.local.slots()[:limit]
        bodies = [
            _compile_body(ring, dn, sw, mw, port_getters)
            for mw in active_words
        ]
        core: Optional[CycleThunk] = None
        if any(body is not None for body in bodies):
            slot_bodies = tuple(bodies)
            lc = dn.local

            def core(bus, host_in, _lc=lc, _b=slot_bodies):
                body = _b[_lc._counter]
                if body is not None:
                    body(bus, host_in)
        commit = _compile_commit(ring, dn, active_words, is_local=True)
    else:
        mw = dn.global_word
        active_words = [mw]
        core = _compile_body(ring, dn, sw, mw, port_getters)
        commit = _compile_commit(ring, dn, active_words, is_local=False)
    return _wrap_eagers(eagers, core), commit


def compile_plan(ring: "Ring") -> CompiledPlan:
    """Pre-decode *ring*'s current configuration into a steady-state plan.

    The plan stays bit-identical to the interpreter as long as the
    configuration does not change; the ring invalidates it on every
    configuration mutation and falls back to the interpreter for the
    following cycle.
    """
    geometry = ring.geometry
    evals = []
    commits = []
    stats = []
    for layer in range(geometry.layers):
        sw = ring._switches[layer]
        upstream = ring._dnodes[ring.upstream_layer(layer)]
        for pos in range(geometry.width):
            dn = ring._dnodes[layer][pos]
            stats.append(dn.stats)
            ev, cm = _compile_dnode(ring, dn, sw, upstream)
            if ev is not None:
                evals.append(ev)
            if cm is not None:
                commits.append(cm)
    shifts = [
        _make_shift(ring._switches[k],
                    ring._dnodes[ring.upstream_layer(k)])
        for k in range(geometry.layers)
    ]
    return CompiledPlan(ring, evals, shifts, commits, stats)


__all__ = ["CompiledPlan", "compile_plan"]
