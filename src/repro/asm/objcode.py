"""Machine object-code container emitted by the assembler.

The paper's tool "directly generates the machine object code, ready to be
executed in the architecture".  Our object code bundles everything the
loader needs to bring up a :class:`~repro.host.system.RingSystem`:

* the configuration ROM (40-bit entries: Dnode microwords and 16-bit
  switch-route words),
* the encoded controller program (32-bit words),
* configuration *planes* — named full/partial fabric snapshots referenced
  by index from ``CFGPLANE`` and applied by the loader at start-up,
* the symbol table (labels, for debuggers and tests).

A compact binary serialisation (:meth:`ObjectCode.to_bytes` /
:meth:`ObjectCode.from_bytes`) makes the object code a real artefact that
can be written to disk and reloaded — the prototype's preloaded PRG memory.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.isa import MICROWORD_BITS
from repro.errors import LoaderError

MAGIC = b"SRNG"
FORMAT_VERSION = 1


@dataclass
class PlaneSpec:
    """One named configuration plane, as ROM/raw references.

    Every entry references the configuration ROM by index so a plane is
    small even for large fabrics.
    """

    name: str
    dnode_words: List[Tuple[int, int]] = field(default_factory=list)
    modes: List[Tuple[int, int]] = field(default_factory=list)
    local_slots: List[Tuple[int, int, int]] = field(default_factory=list)
    local_limits: List[Tuple[int, int]] = field(default_factory=list)
    routes: List[Tuple[int, int, int, int]] = field(default_factory=list)


@dataclass
class ObjectCode:
    """A complete loadable application image."""

    layers: int
    width: int
    cfg_rom: List[int] = field(default_factory=list)
    program: List[int] = field(default_factory=list)
    planes: List[PlaneSpec] = field(default_factory=list)
    initial_plane: Optional[int] = None
    symbols: Dict[str, int] = field(default_factory=dict)

    def plane_index(self, name: str) -> int:
        """Index of the plane called *name*."""
        for i, plane in enumerate(self.planes):
            if plane.name == name:
                return i
        raise LoaderError(f"no plane named {name!r}")

    # ------------------------------------------------------------------
    # Binary serialisation
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the on-disk object format."""
        out = bytearray()
        out += MAGIC
        out += struct.pack(">BHH", FORMAT_VERSION, self.layers, self.width)
        out += struct.pack(">I", len(self.cfg_rom))
        for entry in self.cfg_rom:
            if entry < 0 or entry >= (1 << MICROWORD_BITS):
                raise LoaderError(f"ROM entry {entry!r} exceeds 40 bits")
            out += entry.to_bytes(5, "big")
        out += struct.pack(">I", len(self.program))
        for instr in self.program:
            out += struct.pack(">I", instr)
        out += struct.pack(">H", len(self.planes))
        for plane in self.planes:
            name = plane.name.encode("utf-8")
            out += struct.pack(">B", len(name)) + name
            out += struct.pack(">I", len(plane.dnode_words))
            for dnode, rom in plane.dnode_words:
                out += struct.pack(">HI", dnode, rom)
            out += struct.pack(">I", len(plane.modes))
            for dnode, mode in plane.modes:
                out += struct.pack(">HB", dnode, mode)
            out += struct.pack(">I", len(plane.local_slots))
            for dnode, slot, rom in plane.local_slots:
                out += struct.pack(">HBI", dnode, slot, rom)
            out += struct.pack(">I", len(plane.local_limits))
            for dnode, limit in plane.local_limits:
                out += struct.pack(">HB", dnode, limit)
            out += struct.pack(">I", len(plane.routes))
            for sw, pos, port, rom in plane.routes:
                out += struct.pack(">HBBI", sw, pos, port, rom)
        out += struct.pack(
            ">i", -1 if self.initial_plane is None else self.initial_plane
        )
        out += struct.pack(">H", len(self.symbols))
        for name, value in sorted(self.symbols.items()):
            encoded = name.encode("utf-8")
            out += struct.pack(">B", len(encoded)) + encoded
            out += struct.pack(">I", value)
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ObjectCode":
        """Parse the on-disk object format."""
        reader = _Reader(blob)
        if reader.take(4) != MAGIC:
            raise LoaderError("bad object-code magic")
        version, layers, width = reader.unpack(">BHH")
        if version != FORMAT_VERSION:
            raise LoaderError(f"unsupported object format version {version}")
        (rom_count,) = reader.unpack(">I")
        cfg_rom = [int.from_bytes(reader.take(5), "big")
                   for _ in range(rom_count)]
        (prog_count,) = reader.unpack(">I")
        program = [reader.unpack(">I")[0] for _ in range(prog_count)]
        (plane_count,) = reader.unpack(">H")
        planes = []
        for _ in range(plane_count):
            (name_len,) = reader.unpack(">B")
            name = reader.take(name_len).decode("utf-8")
            plane = PlaneSpec(name)
            (n,) = reader.unpack(">I")
            plane.dnode_words = [reader.unpack(">HI") for _ in range(n)]
            (n,) = reader.unpack(">I")
            plane.modes = [reader.unpack(">HB") for _ in range(n)]
            (n,) = reader.unpack(">I")
            plane.local_slots = [reader.unpack(">HBI") for _ in range(n)]
            (n,) = reader.unpack(">I")
            plane.local_limits = [reader.unpack(">HB") for _ in range(n)]
            (n,) = reader.unpack(">I")
            plane.routes = [reader.unpack(">HBBI") for _ in range(n)]
            planes.append(plane)
        (initial,) = reader.unpack(">i")
        (sym_count,) = reader.unpack(">H")
        symbols = {}
        for _ in range(sym_count):
            (name_len,) = reader.unpack(">B")
            name = reader.take(name_len).decode("utf-8")
            (value,) = reader.unpack(">I")
            symbols[name] = value
        return cls(
            layers=layers,
            width=width,
            cfg_rom=cfg_rom,
            program=program,
            planes=planes,
            initial_plane=None if initial < 0 else initial,
            symbols=symbols,
        )


class _Reader:
    """Sequential byte reader with bounds checking."""

    def __init__(self, blob: bytes):
        self._blob = blob
        self._offset = 0

    def take(self, count: int) -> bytes:
        if self._offset + count > len(self._blob):
            raise LoaderError("truncated object code")
        chunk = self._blob[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def unpack(self, fmt: str) -> tuple:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))
