"""Assembler <-> disassembler round-trip: ``assemble -> disassemble ->
reassemble`` is idempotent.

The first round trip may *shrink* the configuration ROM (the
disassembler emits inline ``[...]`` operands, so duplicate ``cfgword``
entries collapse), which is why idempotence is asserted between the
second and third generations, not the first and second.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.asm import assemble
from repro.asm.disasm import disassemble
from repro.asm.microasm import format_dnode_op
from repro.asm.parser import _split_operands
from repro.core.isa import decode, encode

from tests.core.test_isa import microwords

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "examples"))

from assembly_programming import SOURCE as PIPELINE_SOURCE  # noqa: E402
from adaptive_lms import SOURCE as LMS_SOURCE  # noqa: E402

EXAMPLES = [
    pytest.param(PIPELINE_SOURCE, id="assembly_programming"),
    pytest.param(LMS_SOURCE, id="adaptive_lms"),
]


def round_trip(source, layers=4, width=2):
    obj1 = assemble(source, layers=layers, width=width)
    text2 = disassemble(obj1)
    obj2 = assemble(text2, layers=layers, width=width)
    text3 = disassemble(obj2)
    obj3 = assemble(text3, layers=layers, width=width)
    return obj1, obj2, text2, obj3, text3


class TestExamplePrograms:
    @pytest.mark.parametrize("source", EXAMPLES)
    def test_text_reaches_fixpoint(self, source):
        _, _, text2, _, text3 = round_trip(source)
        assert text2 == text3

    @pytest.mark.parametrize("source", EXAMPLES)
    def test_object_code_reaches_fixpoint(self, source):
        _, obj2, _, obj3, _ = round_trip(source)
        assert obj2.program == obj3.program
        assert obj2.cfg_rom == obj3.cfg_rom
        assert obj2.planes == obj3.planes
        assert obj2.initial_plane == obj3.initial_plane

    @pytest.mark.parametrize("source", EXAMPLES)
    def test_semantics_survive_first_round_trip(self, source):
        """The ROM may shrink on round one, but the executable program
        stream and plane structure must already be equivalent."""
        obj1, obj2, _, _, _ = round_trip(source)
        assert (obj1.layers, obj1.width) == (obj2.layers, obj2.width)
        assert len(obj1.planes) == len(obj2.planes)
        assert obj1.program == obj2.program


class TestRandomizedMicrowords:
    @given(mw=microwords())
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_encode_decode_is_identity(self, mw):
        assert decode(encode(mw)) == mw

    @given(mw=microwords())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_random_word_survives_source_round_trip(self, mw):
        """Mount a random microword in a plane, disassemble, reassemble:
        the encoded bits must be reproduced exactly."""
        source = f"""
.ring boot
dnode 0.0 global
    {format_dnode_op(mw)}
"""
        obj = assemble(source, layers=2, width=2)
        obj2 = assemble(disassemble(obj), layers=2, width=2)
        assert obj.planes == obj2.planes
        assert obj.cfg_rom == obj2.cfg_rom

    @given(mw=microwords())
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_random_inline_cfgdi_operand(self, mw):
        """Random microwords as inline ``cfgdi d0.0, [...]`` operands
        assemble to the exact source bits and survive a round trip."""
        source = f"""
.ring boot
dnode 0.0 global
    nop
.risc
    cfgdi d0.0, [{format_dnode_op(mw)}]
    halt
"""
        obj = assemble(source, layers=2, width=2)
        # The parser canonicalises don't-care fields, so compare the
        # *rendered* word rather than raw encodings.
        assert format_dnode_op(decode(obj.cfg_rom[-1])) == \
            format_dnode_op(mw)
        obj2 = assemble(disassemble(obj), layers=2, width=2)
        assert obj.program == obj2.program
        assert obj.cfg_rom == obj2.cfg_rom


class TestInlineOperands:
    def test_brackets_group_commas(self):
        assert _split_operands("d0.0, [mul out, in1, #2]") == \
            ["d0.0", "[mul out, in1, #2]"]

    def test_nested_and_mixed_grouping(self):
        assert _split_operands("a, [x, (y, z)], b") == \
            ["a", "[x, (y, z)]", "b"]

    def test_inline_word_operand_assembles(self):
        source = """
.ring boot
dnode 0.0 global
    nop
.risc
    cfgdi d0.1, [mul out, in1, #2]
    halt
"""
        obj = assemble(source, layers=2, width=2)
        word = decode(obj.cfg_rom[-1])
        assert word.imm == 2

    def test_inline_route_operand_assembles(self):
        source = """
.ring boot
dnode 0.0 global
    nop
.risc
    cfgs s1.0.1, [up0]
    halt
"""
        obj = assemble(source, layers=2, width=2)
        obj2 = assemble(disassemble(obj), layers=2, width=2)
        assert obj.cfg_rom == obj2.cfg_rom
