"""Job and result records of the RingFarm serving layer.

A :class:`FarmJob` is the unit of tenant work: a complete fabric
configuration (a :class:`~repro.core.config_memory.ConfigPlane`, i.e. a
*compiled-plan job* — the fingerprint of the plane decides which worker's
warm cache it lands on), the host stimulus (streams, FIFO preloads,
output taps) and a cycle budget.  A :class:`FarmResult` carries back the
tap sample streams, a full :func:`~repro.core.snapshot.state_digest` of
the fabric after the run (the bit-identity contract the differential
suite checks against direct execution) and the plan-cache telemetry the
front door aggregates into ``farm_*`` metrics.

Both records have a JSON wire form (``*_to_wire`` / ``*_from_wire``)
used by the stdlib TCP front door in :mod:`repro.farm.server`: planes
are encoded with the existing ISA and routing codecs
(:func:`repro.core.isa.encode` / :func:`repro.core.switch.encode_route`),
so the wire format is exactly the architecture's own configuration-word
encoding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config_memory import ConfigPlane
from repro.core.dnode import DnodeMode
from repro.core.isa import decode as decode_word, encode as encode_word
from repro.core.switch import decode_route, encode_route
from repro.errors import ConfigurationError

#: ``(layer, position, sample_limit)`` — where to attach an output tap.
TapSpec = Tuple[int, int, Optional[int]]

#: ``(layer, position, channel, words)`` — a FIFO preload.
FifoLoad = Tuple[int, int, int, List[int]]


@dataclass
class FarmJob:
    """One tenant request: run *plane* on a layers x width ring."""

    tenant: str
    layers: int
    width: int
    plane: ConfigPlane
    cycles: int
    streams: Dict[int, List[int]] = field(default_factory=dict)
    taps: List[TapSpec] = field(default_factory=list)
    fifos: List[FifoLoad] = field(default_factory=list)
    strict_fifos: bool = False
    job_id: str = ""
    #: Compute the full-fabric state digest for the result.  Taps are
    #: the product; the digest is the bit-identity verification
    #: affordance, and costs as much as ~40 cycles of execution on a
    #: Ring-16 — latency-sensitive tenants can opt out.
    want_digest: bool = True

    def validate(self) -> None:
        if not self.tenant:
            raise ConfigurationError("farm job needs a tenant name")
        if self.layers < 2:
            raise ConfigurationError(
                f"farm job needs >= 2 layers, got {self.layers}")
        if self.width < 1:
            raise ConfigurationError(
                f"farm job needs width >= 1, got {self.width}")
        if self.cycles < 0:
            raise ConfigurationError(
                f"farm job cycle budget must be >= 0, got {self.cycles}")
        if not isinstance(self.plane, ConfigPlane):
            raise ConfigurationError(
                f"farm job plane must be a ConfigPlane, got "
                f"{type(self.plane).__name__}")


@dataclass
class FarmResult:
    """What a worker hands back for one completed (or aborted) job."""

    job_id: str
    tenant: str
    worker: int
    cycles_run: int
    #: One sample stream per requested tap, in tap order.
    taps: List[List[int]]
    #: Full-fabric state digest after the run (bit-identity contract).
    digest: tuple
    #: Strict-FIFO abort message (cycle included), None on success.
    aborted: Optional[str] = None
    #: True when the job was paused and resumed on another worker.
    migrated: bool = False
    #: True when the whole job executed off a cached compiled plan.
    warm: bool = False
    #: Plan-cache hit / plan-compile deltas attributable to this job.
    plan_hits: int = 0
    plan_compiles: int = 0

    @property
    def digest_hex(self) -> str:
        """Compact hex form of :attr:`digest` for wire transport."""
        return hashlib.sha256(repr(self.digest).encode()).hexdigest()


# -- wire codecs -------------------------------------------------------


def plane_to_wire(plane: ConfigPlane) -> dict:
    """JSON-safe encoding of a configuration plane.

    Microwords and routes travel as the architecture's own configuration
    integers; addresses as plain lists (JSON has no tuple keys).
    """
    return {
        "microwords": [[l, p, encode_word(mw)]
                       for (l, p), mw in plane.microwords.items()],
        "modes": [[l, p, mode.name]
                  for (l, p), mode in plane.modes.items()],
        "local": [[l, p, [encode_word(mw) for mw in slots], limit]
                  for (l, p), (slots, limit)
                  in plane.local_programs.items()],
        "routes": [[sw, pos, port, encode_route(src)]
                   for (sw, pos, port), src
                   in plane.switch_routes.items()],
    }


def plane_from_wire(data: dict) -> ConfigPlane:
    return ConfigPlane(
        microwords={(l, p): decode_word(raw)
                    for l, p, raw in data.get("microwords", [])},
        modes={(l, p): DnodeMode[name]
               for l, p, name in data.get("modes", [])},
        local_programs={
            (l, p): (tuple(decode_word(raw) for raw in slots), limit)
            for l, p, slots, limit in data.get("local", [])},
        switch_routes={(sw, pos, port): decode_route(raw)
                       for sw, pos, port, raw in data.get("routes", [])},
    )


def job_to_wire(job: FarmJob) -> dict:
    return {
        "tenant": job.tenant,
        "layers": job.layers,
        "width": job.width,
        "plane": plane_to_wire(job.plane),
        "cycles": job.cycles,
        "streams": {str(ch): list(vals)
                    for ch, vals in job.streams.items()},
        "taps": [[layer, pos, limit] for layer, pos, limit in job.taps],
        "fifos": [[l, p, c, list(words)] for l, p, c, words in job.fifos],
        "strict_fifos": job.strict_fifos,
        "job_id": job.job_id,
        "want_digest": job.want_digest,
    }


def job_from_wire(data: dict) -> FarmJob:
    return FarmJob(
        tenant=data["tenant"],
        layers=data["layers"],
        width=data["width"],
        plane=plane_from_wire(data["plane"]),
        cycles=data["cycles"],
        streams={int(ch): list(vals)
                 for ch, vals in data.get("streams", {}).items()},
        taps=[(layer, pos, limit)
              for layer, pos, limit in data.get("taps", [])],
        fifos=[(l, p, c, list(words))
               for l, p, c, words in data.get("fifos", [])],
        strict_fifos=bool(data.get("strict_fifos", False)),
        job_id=data.get("job_id", ""),
        want_digest=bool(data.get("want_digest", True)),
    )


def result_to_wire(result: FarmResult) -> dict:
    return {
        "job_id": result.job_id,
        "tenant": result.tenant,
        "worker": result.worker,
        "cycles_run": result.cycles_run,
        "taps": [list(stream) for stream in result.taps],
        "digest": result.digest_hex,
        "aborted": result.aborted,
        "migrated": result.migrated,
        "warm": result.warm,
        "plan_hits": result.plan_hits,
        "plan_compiles": result.plan_compiles,
    }


__all__ = [
    "FarmJob",
    "FarmResult",
    "job_from_wire",
    "job_to_wire",
    "plane_from_wire",
    "plane_to_wire",
    "result_to_wire",
]
