"""Table 2 — wavelet-transform implementation comparison.

Paper rows: [10] (0.7 um, 48.4 mm^2, 50 MHz), [11] (0.25 um, 2.2 mm^2,
150 MHz), Ring-16 (0.18 um, 1.4 mm^2, 200 MHz) — all at one pixel
sample per clock cycle, the Ring being the only programmable one with
25 % of the fabric left free.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.baselines.wavelet_asics import WAVELET_CIRCUITS
from repro.kernels.reference import dwt53_2d
from repro.kernels.wavelet import (
    DNODES_USED,
    dwt53_2d_fabric,
    lifting53_forward_fabric,
    wavelet_cycle_model,
)
from repro.tech.area import ring_area_mm2

PAPER_IMAGE = (768, 1024)


def test_table2_fabric_2d_transform(benchmark, rng):
    """Benchmark the cycle-accurate 2-D DWT and check bit-exactness."""
    image = rng.integers(0, 256, (16, 16))
    coeffs, cycles = benchmark(dwt53_2d_fabric, image)
    assert np.array_equal(coeffs, dwt53_2d(image))
    benchmark.extra_info["fabric_cycles"] = cycles


def test_table2_fabric_1d_pass(benchmark, rng):
    signal = [int(v) for v in rng.integers(0, 256, 128)]
    result = benchmark(lifting53_forward_fabric, signal)
    assert result.dnodes_used == DNODES_USED


def test_table2_shape():
    """Area/frequency/throughput comparison at the paper's 1024x768."""
    height, width = PAPER_IMAGE
    ring_cycles = wavelet_cycle_model(height, width)
    ring_time = ring_cycles / 200e6
    ring_area = ring_area_mm2(16, "0.18um",
                              extra_memory_bits=2 * width * 16)

    rows = []
    for c in WAVELET_CIRCUITS.values():
        rows.append([c.name, c.technology, c.area_mm2,
                     c.frequency_hz / 1e6,
                     c.time_for_image_s(height, width) * 1e3])
    rows.append(["Ring-16 (reproduced)", "0.18um", ring_area, 200.0,
                 ring_time * 1e3])
    emit(render_table(
        ["circuit", "techno", "area mm^2", "MHz", "1024x768 ms"],
        rows, title="Table 2 (reproduced) — wavelet implementations"))

    # One pixel sample per cycle on the paper's image.
    assert ring_cycles / (height * width) == pytest.approx(1.0, rel=0.03)
    # The Ring is the fastest of the three at this workload.
    assert all(ring_time < c.time_for_image_s(height, width)
               for c in WAVELET_CIRCUITS.values())
    # Area in the same class as the modern ASIC [11], far below [10].
    assert ring_area < WAVELET_CIRCUITS["navarro"].area_mm2 / 10
    assert ring_area == pytest.approx(1.4, rel=0.15)
    # 25 % of the fabric remains free.
    assert DNODES_USED / 16 == 0.75
