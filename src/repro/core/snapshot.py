"""Checkpoint/restore of complete fabric runtime state.

Long systolic simulations (frame-level motion search, full-image
transforms) benefit from checkpoints: capture *everything* live in the
fabric — register files, output registers, feedback pipelines, FIFO
contents, local-sequencer counters, cycle/statistics counters, FIFO
underflow and high-water accounting, the last bus value — and restore it
later onto a same-geometry ring.  Configuration state is captured via a
:class:`~repro.core.config_memory.ConfigPlane`, so one snapshot fully
determines future behaviour: a restored ring is cycle-for-cycle *and
counter-for-counter* identical to the original (tested on every
execution engine).

Engine interaction contract:

* ``restore()`` ends with an explicit
  :meth:`~repro.core.ring.Ring._invalidate_fastpath` — the active
  compiled plan, macro kernel and native plan are dropped and every
  invalidation listener fires, so no engine can keep executing a plan
  compiled for the pre-restore configuration.  Plans retained in the
  fingerprint cache stay valid (they are keyed by configuration and
  close over the ring's stable state containers — native plans
  additionally by entry phase), and restore immediately re-adopts
  the cached plan for the restored fingerprint via
  :meth:`~repro.core.ring.Ring.adopt_cached_plan` — a
  restore-to-known-config pays one cache lookup, zero recompiles and
  zero interpreted warm-up cycles.
* A ring running the batch backend captures the full per-lane state
  (:meth:`~repro.core.batchpath.BatchRing.capture_lanes`); restoring
  onto a batch ring of the same lane count rebuilds every lane, not
  just the lane-0 scalar mirror.  Restoring a batch snapshot onto a
  scalar ring (or vice versa) is permitted and keeps lane 0.

What a snapshot deliberately does *not* cover: engine-lifetime counters
(``plan_compiles``, ``plan_invalidations``, ``macro_cycles``, the plan
cache and its hit/miss statistics, configuration write counters) and the
robustness counters (``faults_injected`` etc.) — those describe the
simulation host, not the architectural state of the fabric, and restoring
must not rewrite history (a rollback still counts as a rollback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config_memory import ConfigPlane
from repro.core.ring import Ring
from repro.errors import SimulationError

#: Per-Dnode statistics captured in a snapshot, field order matching
#: :class:`~repro.core.dnode.DnodeStats`.
_STAT_FIELDS = ("cycles", "instructions", "arithmetic_ops", "multiplies",
                "fifo_pops")


@dataclass
class RingSnapshot:
    """Frozen runtime + configuration state of a ring."""

    layers: int
    width: int
    pipeline_depth: int
    cycles: int
    configuration: ConfigPlane
    registers: Dict[Tuple[int, int], List[int]] = field(
        default_factory=dict)
    outs: Dict[Tuple[int, int], int] = field(default_factory=dict)
    local_counters: Dict[Tuple[int, int], int] = field(
        default_factory=dict)
    pipelines: Dict[int, List[List[int]]] = field(default_factory=dict)
    fifos: Dict[Tuple[int, int, int], List[int]] = field(
        default_factory=dict)
    #: Per-Dnode activity counters, as tuples in ``_STAT_FIELDS`` order.
    stats: Dict[Tuple[int, int], Tuple[int, ...]] = field(
        default_factory=dict)
    fifo_underflows: int = 0
    fifo_high_water: Dict[Tuple[int, int, int], int] = field(
        default_factory=dict)
    last_bus: int = 0
    #: Full per-lane batch-engine state (``BatchRing.capture_lanes()``),
    #: present only when the source ring had a live batch engine.
    lanes: Optional[dict] = None


def capture(ring: Ring) -> RingSnapshot:
    """Snapshot *ring*'s complete state (configuration + runtime)."""
    geometry = ring.geometry
    snapshot = RingSnapshot(
        layers=geometry.layers,
        width=geometry.width,
        pipeline_depth=geometry.pipeline_depth,
        cycles=ring.cycles,
        configuration=ring.config.capture_plane(),
        fifo_underflows=ring.fifo_underflows,
        fifo_high_water=dict(ring.fifo_high_water),
        last_bus=ring.last_bus,
    )
    for dn in ring.all_dnodes():
        addr = (dn.layer, dn.position)
        snapshot.registers[addr] = dn.regs.snapshot()
        snapshot.outs[addr] = dn.out
        snapshot.local_counters[addr] = dn.local.counter
        snapshot.stats[addr] = tuple(
            getattr(dn.stats, name) for name in _STAT_FIELDS)
    for k in range(geometry.layers):
        sw = ring.switch(k)
        snapshot.pipelines[k] = [
            [sw.rp_read(stage, lane) for stage in
             range(1, geometry.pipeline_depth + 1)]
            for lane in range(1, geometry.width + 1)
        ]
    # Iterate the live dict rather than ring.fifo(): capture must not
    # materialize empty queues as a side effect (a restored-then-rebuilt
    # batch engine would mirror the extra queues and its lane digest
    # would differ from a never-restored twin's).
    for key, queue in ring._fifos.items():
        if queue:
            snapshot.fifos[key] = list(queue)
    if ring._batch_engine is not None:
        snapshot.lanes = ring._batch_engine.capture_lanes()
    elif ring._shard_engine is not None:
        snapshot.lanes = ring._shard_engine.capture_lanes()
    return snapshot


def restore(ring: Ring, snapshot: RingSnapshot) -> None:
    """Load *snapshot* onto *ring* (must share the exact geometry)."""
    geometry = ring.geometry
    if (geometry.layers, geometry.width, geometry.pipeline_depth) != \
            (snapshot.layers, snapshot.width, snapshot.pipeline_depth):
        raise SimulationError(
            f"snapshot is for a {snapshot.layers}x{snapshot.width} ring "
            f"(pipeline depth {snapshot.pipeline_depth}); target is "
            f"{geometry.layers}x{geometry.width}"
        )
    ring.reset()
    ring.config.apply_plane(snapshot.configuration)
    for (layer, pos), values in snapshot.registers.items():
        dn = ring.dnode(layer, pos)
        for index, value in enumerate(values):
            dn.regs.stage_write(index, value)
            dn.regs.commit()
        dn._out = snapshot.outs[(layer, pos)]
        dn.local._counter = snapshot.local_counters[(layer, pos)]
        stat_values = snapshot.stats.get((layer, pos))
        if stat_values is not None:
            for name, value in zip(_STAT_FIELDS, stat_values):
                setattr(dn.stats, name, value)
    for k, lanes in snapshot.pipelines.items():
        sw = ring.switch(k)
        for lane in range(snapshot.width):
            for stage in range(1, snapshot.pipeline_depth + 1):
                sw.rp_write(stage, lane + 1, lanes[lane][stage - 1])
    for (layer, pos, channel), values in snapshot.fifos.items():
        ring.push_fifo(layer, pos, channel, values)
    # The pushes above recorded fresh high-water marks; overwrite with
    # the source ring's history so the counters round-trip exactly.
    ring.fifo_underflows = snapshot.fifo_underflows
    ring.fifo_high_water.clear()
    ring.fifo_high_water.update(snapshot.fifo_high_water)
    ring.last_bus = snapshot.last_bus
    ring.cycles = snapshot.cycles
    if (snapshot.lanes is not None
            and ring.backend in Ring.LANE_BACKENDS
            and ring.batch_size == snapshot.lanes["batch"]):
        # Rebuild the engine over the restored scalar state, then load
        # the captured lanes on top (clears the engine kernel caches).
        # ring.reset() above tore the old engine/pool down, so for the
        # shard backend this respawns workers seeded with the restored
        # scalar state and overlays every captured lane.
        ring._lane_engine().restore_lanes(snapshot.lanes)
    # Contract: a restore is a configuration event.  apply_plane() above
    # already fired the invalidation hooks, but the runtime-state writes
    # happened afterwards — invalidate once more so the active plan and
    # macro kernel are dropped *after* the last mutation and every
    # listener observes the completed restore.
    ring._invalidate_fastpath()
    # Restore-to-known-config must not pay a recompile or an interpreted
    # warm-up cycle: the restored configuration is final at this point,
    # so re-adopt a cached plan eagerly in one fingerprint lookup.  A
    # miss leaves the lazy step()-time policy in charge, unchanged.
    ring.adopt_cached_plan()


def state_digest(ring: Ring) -> tuple:
    """Canonical, hashable digest of a ring's complete state.

    Equal digests mean bit-identical fabric state: configuration,
    datapath contents, every per-lane word when a batch engine is live,
    and the architectural counters a snapshot round-trips (statistics,
    underflows, FIFO high-water marks, the cycle count and last bus
    value).  Engine-lifetime counters are excluded, mirroring the
    snapshot contract, so digests are comparable across execution
    backends and across a rollback.
    """
    return snapshot_digest(capture(ring))


def snapshot_digest(snapshot: RingSnapshot) -> tuple:
    """The :func:`state_digest` of a snapshot without a target ring."""

    def freeze(value):
        if isinstance(value, dict):
            return tuple(sorted(
                (freeze(k), freeze(v)) for k, v in value.items()))
        if isinstance(value, (list, tuple)):
            return tuple(freeze(v) for v in value)
        return value

    plane = snapshot.configuration
    return (
        snapshot.layers, snapshot.width, snapshot.pipeline_depth,
        snapshot.cycles,
        freeze(plane.microwords), freeze(plane.modes),
        freeze(plane.local_programs), freeze(plane.switch_routes),
        freeze(snapshot.registers), freeze(snapshot.outs),
        freeze(snapshot.local_counters), freeze(snapshot.pipelines),
        freeze(snapshot.fifos), freeze(snapshot.stats),
        snapshot.fifo_underflows, freeze(snapshot.fifo_high_water),
        snapshot.last_bus, freeze(snapshot.lanes),
    )


__all__ = ["RingSnapshot", "capture", "restore", "state_digest",
           "snapshot_digest"]
