"""Context-switched streaming pipelines, end to end.

The scenario pipelines time-multiplex one fabric between two
configuration planes mid-stream (synth voice <-> echo, chorus <-> echo).
These tests pin the three claims the scenario layer makes:

* the wet output is **bit-exact** against the whole-stream golden models
  regardless of chunking, and identical whether the host advances
  cycle-by-cycle or in bulk bursts;
* after the first A/B round, plane switching is **free of interpretation**
  — the plan cache re-adopts each plane by configuration fingerprint
  with zero interpreted cycles and zero recompiles;
* the pipelines run bit-identical on every execution engine, and leave
  the fabric in the interpreter twin's exact architectural state.
"""

from __future__ import annotations

import pytest

from repro.core.ring import Ring
from tests.kernels.conftest import ENGINES
from repro.kernels import reference
from repro.kernels.scenarios import (EFFECTS_CHORUS_DEPTH,
                                     EFFECTS_GEOMETRY, SYNTH_GEOMETRY,
                                     run_effects_chain, run_synth_voice)

from tests.kernels.conftest import fabric_state, make_ring


@pytest.fixture(params=sorted(ENGINES))
def engine(request):
    return request.param, dict(ENGINES[request.param])


ENVELOPE = ([min(32767, 700 * n) for n in range(48)] +
            [max(0, 32767 - 1100 * n) for n in range(48)])
SIGNAL = [((7 * n + 11) % 120) - 60 for n in range(96)]

FCW_A, FCW_B = 1400, 1750
ECHO_GAIN = 22000
MASTER_GAIN = 26000

SYNTH_GOLDEN = reference.synth_voice_pipeline(
    ENVELOPE, FCW_A, FCW_B, SYNTH_GEOMETRY.layers, ECHO_GAIN)
EFFECTS_GOLDEN = reference.effects_chain_pipeline(
    SIGNAL, EFFECTS_CHORUS_DEPTH, MASTER_GAIN, EFFECTS_GEOMETRY.layers,
    ECHO_GAIN)


class TestSynthVoicePipeline:
    def test_bit_exact_against_golden(self):
        result = run_synth_voice(ENVELOPE, FCW_A, FCW_B, ECHO_GAIN,
                                 chunk=32)
        assert result.outputs == SYNTH_GOLDEN
        assert result.stage_outputs == reference.synth_voice_dry(
            ENVELOPE, FCW_A, FCW_B)

    @pytest.mark.parametrize("chunk", [16, 24, 32, 96])
    def test_chunking_invariant(self, chunk):
        result = run_synth_voice(ENVELOPE, FCW_A, FCW_B, ECHO_GAIN,
                                 chunk=chunk)
        assert result.outputs == SYNTH_GOLDEN
        assert result.switches == 2 * (len(ENVELOPE) // chunk)

    def test_per_cycle_identical_to_bulk(self):
        bulk = run_synth_voice(ENVELOPE, FCW_A, FCW_B, ECHO_GAIN,
                               chunk=24)
        stepped = run_synth_voice(ENVELOPE, FCW_A, FCW_B, ECHO_GAIN,
                                  chunk=24, per_cycle=True)
        assert stepped.outputs == bulk.outputs
        assert stepped.stage_outputs == bulk.stage_outputs
        assert stepped.cycles == bulk.cycles


class TestEffectsChainPipeline:
    def test_bit_exact_against_golden(self):
        result = run_effects_chain(SIGNAL, MASTER_GAIN, ECHO_GAIN,
                                   chunk=32)
        assert result.outputs == EFFECTS_GOLDEN
        assert result.stage_outputs == reference.vca(
            reference.chorus(SIGNAL, EFFECTS_CHORUS_DEPTH),
            [MASTER_GAIN] * len(SIGNAL))

    @pytest.mark.parametrize("chunk", [16, 32, 48, 96])
    def test_chunking_invariant(self, chunk):
        result = run_effects_chain(SIGNAL, MASTER_GAIN, ECHO_GAIN,
                                   chunk=chunk)
        assert result.outputs == EFFECTS_GOLDEN

    def test_per_cycle_identical_to_bulk(self):
        bulk = run_effects_chain(SIGNAL, MASTER_GAIN, ECHO_GAIN,
                                 chunk=32)
        stepped = run_effects_chain(SIGNAL, MASTER_GAIN, ECHO_GAIN,
                                    chunk=32, per_cycle=True)
        assert stepped.outputs == bulk.outputs
        assert stepped.cycles == bulk.cycles


class TestReconfigurationChurn:
    """A/B/A plane switching re-adopts cached plans, zero interpretation."""

    def test_synth_voice_plan_readoption(self):
        ring = Ring(SYNTH_GEOMETRY)
        result = run_synth_voice(ENVELOPE, FCW_A, FCW_B, ECHO_GAIN,
                                 chunk=16, ring=ring)
        rounds = len(ENVELOPE) // 16
        assert result.switches == 2 * rounds
        # One compile per plane on the first round; every later
        # apply_plane re-adopts from the cache by fingerprint.
        assert result.plan_compiles == 2
        assert result.plan_hits == 2 * rounds - 2

    def test_effects_chain_plan_readoption(self):
        ring = Ring(EFFECTS_GEOMETRY)
        result = run_effects_chain(SIGNAL, MASTER_GAIN, ECHO_GAIN,
                                   chunk=24, ring=ring)
        rounds = len(SIGNAL) // 24
        assert result.plan_compiles == 2
        assert result.plan_hits == 2 * rounds - 2

    def test_steady_state_has_zero_interpreted_cycles(self):
        ring = Ring(SYNTH_GEOMETRY)
        # Warm both planes (first A/B round compiles them).
        run_synth_voice(ENVELOPE[:32], FCW_A, FCW_B, ECHO_GAIN,
                        chunk=32, ring=ring)
        with ring.profile() as prof:
            run_synth_voice(ENVELOPE, FCW_A, FCW_B, ECHO_GAIN,
                            chunk=32, ring=ring)
        assert prof.interpreted_cycles == 0
        assert prof.plan_compiles == 0

    def test_aba_stream_matches_unchunked_golden(self):
        # The A/B/A pattern with the smallest legal chunk is the
        # harshest churn; outputs must still be the whole-stream golden.
        result = run_effects_chain(SIGNAL, MASTER_GAIN, ECHO_GAIN,
                                   chunk=16)
        assert result.outputs == EFFECTS_GOLDEN
        assert result.switches == 2 * (len(SIGNAL) // 16)


class TestPipelineEngineMatrix:
    """Both pipelines, every engine, vs interpreter twin state."""

    def test_synth_voice_cross_engine(self, engine):
        name, kwargs = engine
        ring = make_ring(SYNTH_GEOMETRY, kwargs)
        result = run_synth_voice(ENVELOPE[:48], FCW_A, FCW_B, ECHO_GAIN,
                                 chunk=16, ring=ring)
        twin = make_ring(SYNTH_GEOMETRY, {"fastpath": False})
        want = run_synth_voice(ENVELOPE[:48], FCW_A, FCW_B, ECHO_GAIN,
                               chunk=16, ring=twin)
        assert result.outputs == want.outputs, (
            f"{name} diverged from interpreter")
        assert result.outputs == SYNTH_GOLDEN[:48]
        assert fabric_state(ring) == fabric_state(twin)

    def test_effects_chain_cross_engine(self, engine):
        name, kwargs = engine
        ring = make_ring(EFFECTS_GEOMETRY, kwargs)
        result = run_effects_chain(SIGNAL[:48], MASTER_GAIN, ECHO_GAIN,
                                   chunk=16, ring=ring)
        twin = make_ring(EFFECTS_GEOMETRY, {"fastpath": False})
        want = run_effects_chain(SIGNAL[:48], MASTER_GAIN, ECHO_GAIN,
                                 chunk=16, ring=twin)
        assert result.outputs == want.outputs, (
            f"{name} diverged from interpreter")
        assert result.outputs == reference.effects_chain_pipeline(
            SIGNAL[:48], EFFECTS_CHORUS_DEPTH, MASTER_GAIN,
            EFFECTS_GEOMETRY.layers, ECHO_GAIN)
        assert fabric_state(ring) == fabric_state(twin)
