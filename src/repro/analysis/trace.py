"""Signal tracing: per-cycle waveform capture from a running fabric.

Debugging a systolic mapping needs the same tool RTL designers use — a
waveform view.  :class:`SignalTrace` hooks a :class:`~repro.core.ring.Ring`
(or :class:`~repro.host.system.RingSystem`) and records selected signals
every cycle:

* ``out``  — a Dnode's output register,
* ``r0..r3`` — a Dnode's register-file entries,
* the shared ``bus`` (the ring records the last driven value, so
  controlled runs capture the controller's ``BUSW`` traffic).

A trace may be *sampled*: ``interval=N`` captures only after every N-th
cycle, and ``start``/``stop`` bound an inclusive cycle window.  A sampled
trace does not force the ring off its compiled fast path —
:meth:`~repro.core.ring.Ring.run` chunk-runs the batch between capture
points, and the samples are bit-identical to an every-cycle trace
decimated to the same schedule (proven by the fast-path equivalence
suite).  Traces attach through the ring's chained-observer interface, so
several traces (or a trace plus a metrics observer) can coexist and
detach independently.

The capture can be rendered as an ASCII timing diagram
(:meth:`SignalTrace.render`) or exported as an IEEE-1364 VCD file
(:func:`write_vcd`) loadable in GTKWave and friends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import word
from repro.core.ring import Ring
from repro.errors import SimulationError


@dataclass(frozen=True)
class Probe:
    """One traced signal."""

    name: str
    layer: int = -1       # -1 for the bus probe
    position: int = 0
    register: Optional[int] = None   # None = the OUT register

    @classmethod
    def out(cls, layer: int, position: int) -> "Probe":
        return cls(f"D{layer}.{position}.out", layer, position)

    @classmethod
    def reg(cls, layer: int, position: int, index: int) -> "Probe":
        return cls(f"D{layer}.{position}.r{index}", layer, position,
                   register=index)

    @classmethod
    def bus(cls) -> "Probe":
        return cls("bus")


class SignalTrace:
    """Records probe values after every captured fabric cycle.

    Args:
        ring: the fabric to observe.
        probes: at least one :class:`Probe`.
        interval: capture after every *interval*-th cycle (post-commit
            cycle index; 1 = every cycle).
        start: first cycle index eligible for capture (None = no bound).
        stop: last cycle index eligible for capture (None = no bound).
    """

    def __init__(self, ring: Ring, probes: List[Probe],
                 interval: int = 1, start: Optional[int] = None,
                 stop: Optional[int] = None):
        if not probes:
            raise SimulationError("trace needs at least one probe")
        self.ring = ring
        self.probes = list(probes)
        self.interval = interval
        self.samples: Dict[str, List[int]] = {p.name: [] for p in probes}
        #: Post-commit cycle index of each captured sample.
        self.sampled_at: List[int] = []
        for probe in probes:
            if probe.layer >= 0:
                ring.dnode(probe.layer, probe.position)  # validate address
        ring.add_observer(self._capture, interval=interval,
                          start=start, stop=stop)

    def detach(self) -> None:
        """Stop recording.

        Removes only this trace's own observer: hooks installed by other
        traces (or any other observer added before or after this one)
        stay attached.
        """
        self.ring.remove_observer(self._capture)

    def _capture(self, ring: Ring) -> None:
        self.sampled_at.append(ring.cycles)
        for probe in self.probes:
            if probe.layer < 0:
                value = ring.last_bus
            else:
                dn = ring.dnode(probe.layer, probe.position)
                value = dn.out if probe.register is None \
                    else dn.regs.read(probe.register)
            self.samples[probe.name].append(value)

    def observe_bus(self, value: int) -> None:
        """Tell the trace what the bus carries.

        Retained for backward compatibility: the ring now records the
        last driven bus value itself (:attr:`~repro.core.ring.Ring.last_bus`),
        so neither systems nor users need to call this — it simply
        forwards to the ring's record.
        """
        self.ring.last_bus = word.check(value, "bus")

    @property
    def cycles(self) -> int:
        """Number of captured samples (== cycles only for interval 1)."""
        return len(next(iter(self.samples.values())))

    def render(self, signed: bool = True, last: Optional[int] = None,
               ) -> str:
        """ASCII timing diagram: one row per signal, one column per sample.

        Columns are labelled with the fabric cycle each sample was
        captured after (for an every-cycle trace on a fresh ring that is
        simply 1, 2, 3, ...).
        """
        if self.cycles == 0:
            raise SimulationError("nothing traced yet")
        names = [p.name for p in self.probes]
        name_w = max(len(n) for n in names)
        count = self.cycles if last is None else min(last, self.cycles)
        start = self.cycles - count
        cell = 7
        header = " " * name_w + " |" + "".join(
            str(cycle).rjust(cell) for cycle in self.sampled_at[start:])
        lines = [header, "-" * len(header)]
        for name in names:
            values = self.samples[name][start:]
            rendered = "".join(
                (str(word.to_signed(v)) if signed else f"{v:04x}")
                .rjust(cell)
                for v in values)
            lines.append(f"{name.ljust(name_w)} |{rendered}")
        return "\n".join(lines)


#: Printable VCD identifier alphabet: '!' (33) .. '~' (126).
_VCD_ID_BASE = 94


def _vcd_identifier(index: int) -> str:
    """Bijective base-94 identifier: '!', ..., '~', '!!', '!"', ...

    Multi-character identifiers keep any number of probes inside the
    printable range the VCD format requires (a single ``chr(33 + i)``
    walks off the end past 93 probes).
    """
    chars: List[str] = []
    index += 1
    while index > 0:
        index -= 1
        chars.append(chr(33 + index % _VCD_ID_BASE))
        index //= _VCD_ID_BASE
    return "".join(reversed(chars))


def write_vcd(trace: SignalTrace, path, timescale: str = "5 ns",
              module: str = "systolic_ring") -> None:
    """Export a trace as an IEEE-1364 VCD file (GTKWave-loadable).

    One VCD time unit per captured sample (the default 5 ns = 200 MHz for
    an every-cycle trace).  Initial values are dumped in a ``$dumpvars``
    section at time 0; afterwards only value *changes* are dumped, per
    the format.
    """
    if trace.cycles == 0:
        raise SimulationError("nothing traced yet")
    identifiers = {
        probe.name: _vcd_identifier(i)
        for i, probe in enumerate(trace.probes)
    }
    lines = [
        "$date reproduction run $end",
        "$version repro systolic-ring tracer $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for probe in trace.probes:
        safe = probe.name.replace(".", "_")
        lines.append(
            f"$var wire 16 {identifiers[probe.name]} {safe} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]

    previous: Dict[str, int] = {}
    lines.append("#0")
    lines.append("$dumpvars")
    for probe in trace.probes:
        value = trace.samples[probe.name][0]
        lines.append(f"b{value:016b} {identifiers[probe.name]}")
        previous[probe.name] = value
    lines.append("$end")
    for t in range(1, trace.cycles):
        changes = []
        for probe in trace.probes:
            value = trace.samples[probe.name][t]
            if value != previous[probe.name]:
                changes.append(
                    f"b{value:016b} {identifiers[probe.name]}")
                previous[probe.name] = value
        if changes:
            lines.append(f"#{t}")
            lines.extend(changes)
    lines.append(f"#{trace.cycles}")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)


def parse_vcd(path) -> Dict[str, List[Tuple[int, int]]]:
    """Minimal VCD reader: signal name -> [(time, value), ...].

    Exists so tests (and users) can verify exported waveforms without an
    external viewer; handles exactly the subset :func:`write_vcd` emits
    (including multi-character identifiers and the ``$dumpvars``
    section, whose initial values are reported as changes at time 0).
    """
    names: Dict[str, str] = {}
    changes: Dict[str, List[Tuple[int, int]]] = {}
    time = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line.startswith("$var"):
                parts = line.split()
                names[parts[3]] = parts[4]
                changes[parts[4]] = []
            elif line.startswith("#"):
                time = int(line[1:])
            elif line.startswith("b"):
                value_text, ident = line[1:].split()
                changes[names[ident]].append((time, int(value_text, 2)))
    return changes
