"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.ring import Ring, RingGeometry

# The shard suites pin 2-worker pools so every run exercises real
# process boundaries regardless of the runner's core count; the
# production core-count ceiling itself is pinned explicitly (with
# REPRO_SHARD_MAX_WORKERS=1) in tests/core/test_shardpath.py.
os.environ.setdefault("REPRO_SHARD_MAX_WORKERS", "8")


@pytest.fixture
def ring8() -> Ring:
    """The paper's prototyped Ring-8 (4 layers x 2)."""
    return Ring(RingGeometry.ring(8))


@pytest.fixture
def ring16() -> Ring:
    """The Ring-16 used for the application benchmarks."""
    return Ring(RingGeometry.ring(16))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for data-driven tests."""
    return np.random.default_rng(0xD5B)
