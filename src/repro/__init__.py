"""repro — reproduction of the LIRMM Systolic Ring architecture (DATE 2002).

A cycle-accurate Python model of the dynamically reconfigurable systolic
ring accelerator described in *"Highly Scalable Dynamically Reconfigurable
Systolic Ring-Architecture for DSP applications"* (Sassatelli, Torres,
Benoit, Gil, Diou, Cambon, Galy — LIRMM), together with its configuration
controller, two-level assembler, host/SoC integration, the paper's DSP
application kernels, every evaluation baseline, and an analytical silicon
(area/frequency) model.

Typical entry points::

    from repro import make_ring, RingGeometry
    from repro.core import MicroWord, Opcode, Source, Dest
    from repro.host import RingSystem
    from repro.kernels import motion_estimation, wavelet

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.word import MASK, WIDTH, from_signed, to_signed, wrap
from repro.errors import (
    AssemblerError,
    ConfigurationError,
    HostError,
    LoaderError,
    ReproError,
    SimulationError,
    TechnologyError,
)
from repro.core.ring import Ring, RingGeometry, make_ring

__version__ = "1.0.0"

__all__ = [
    "MASK",
    "WIDTH",
    "from_signed",
    "to_signed",
    "wrap",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "AssemblerError",
    "LoaderError",
    "HostError",
    "TechnologyError",
    "Ring",
    "RingGeometry",
    "make_ring",
    "__version__",
]
