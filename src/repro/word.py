"""16-bit word arithmetic for the Systolic Ring datapath.

The Dnode datapath is 16 bits wide (paper §4.1).  All fabric values are
stored as unsigned 16-bit integers (``0 .. 0xFFFF``); arithmetic wraps
modulo 2**16 exactly as a hardware adder would.  Helpers here convert
between the raw bus representation and Python signed integers, so kernel
code can reason in two's complement while the simulator stays in raw bits.
"""

from __future__ import annotations

WIDTH = 16
MASK = (1 << WIDTH) - 1
SIGN_BIT = 1 << (WIDTH - 1)
MIN_SIGNED = -(1 << (WIDTH - 1))
MAX_SIGNED = (1 << (WIDTH - 1)) - 1


def wrap(value: int) -> int:
    """Reduce an arbitrary Python integer to a raw 16-bit bus value."""
    return value & MASK


def to_signed(raw: int) -> int:
    """Interpret a raw 16-bit value as a two's-complement signed integer."""
    raw &= MASK
    return raw - (1 << WIDTH) if raw & SIGN_BIT else raw


def from_signed(value: int) -> int:
    """Encode a Python integer as a raw 16-bit two's-complement value.

    Values outside ``[-32768, 32767]`` wrap, mirroring hardware overflow.
    """
    return value & MASK


def is_valid(raw: int) -> bool:
    """Return True when *raw* is already a canonical 16-bit bus value."""
    return isinstance(raw, int) and 0 <= raw <= MASK


def check(raw: int, what: str = "value") -> int:
    """Validate that *raw* is a canonical bus value, returning it unchanged.

    Raises:
        ValueError: if *raw* is not an integer in ``[0, 0xFFFF]``.
    """
    if not is_valid(raw):
        raise ValueError(f"{what} must be a 16-bit raw word, got {raw!r}")
    return raw


def saturate_signed(value: int) -> int:
    """Clamp a Python integer into signed 16-bit range and return raw bits.

    Used by saturating DSP operations (the hardwired multiplier feeding the
    adder can overflow; kernels that need saturation request it explicitly).
    """
    if value > MAX_SIGNED:
        value = MAX_SIGNED
    elif value < MIN_SIGNED:
        value = MIN_SIGNED
    return value & MASK
