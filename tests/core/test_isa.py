"""Tests for the Dnode microinstruction set and its binary encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core import isa
from repro.core.isa import (
    Dest,
    Flag,
    MicroWord,
    Opcode,
    Source,
    decode,
    decode_bytes,
    encode,
    encode_bytes,
)
from repro.errors import ConfigurationError

_opcodes = st.sampled_from(list(Opcode))
_sources = st.sampled_from(list(Source))
_dests = st.sampled_from(list(Dest))
_flags = st.integers(min_value=0, max_value=7).map(Flag)
_imms = st.integers(min_value=0, max_value=0xFFFF)


def _valid_dest(op, dst):
    if op in isa.ACCUMULATING_OPS and not dst.is_register:
        return Dest.R0
    return dst


@st.composite
def microwords(draw):
    op = draw(_opcodes)
    dst = _valid_dest(op, draw(_dests))
    return MicroWord(op=op, src_a=draw(_sources), src_b=draw(_sources),
                     dst=dst, flags=draw(_flags), imm=draw(_imms))


class TestMicroWord:
    def test_default_is_nop(self):
        assert isa.NOP_WORD.op is Opcode.NOP
        assert isa.NOP_WORD.sources() == ()

    def test_mac_requires_register_dest(self):
        with pytest.raises(ConfigurationError, match="accumulates"):
            MicroWord(Opcode.MAC, Source.IN1, Source.IN2, Dest.OUT)

    def test_macs_requires_register_dest(self):
        with pytest.raises(ConfigurationError):
            MicroWord(Opcode.MACS, Source.IN1, Source.IN2, Dest.NONE)

    def test_imm_validated(self):
        with pytest.raises(ValueError):
            MicroWord(Opcode.ADD, Source.IMM, Source.R0, Dest.OUT,
                      imm=0x10000)

    def test_binary_sources(self):
        mw = MicroWord(Opcode.ADD, Source.IN1, Source.IN2, Dest.OUT)
        assert mw.sources() == (Source.IN1, Source.IN2)

    def test_unary_sources(self):
        mw = MicroWord(Opcode.ABS, Source.R1, dst=Dest.OUT)
        assert mw.sources() == (Source.R1,)

    def test_with_flags_preserves_fields(self):
        mw = MicroWord(Opcode.ADD, Source.IN1, Source.IN2, Dest.R2, imm=7)
        flagged = mw.with_flags(Flag.POP_FIFO1)
        assert flagged.flags & Flag.POP_FIFO1
        assert flagged.op is mw.op and flagged.imm == 7

    def test_str_contains_mnemonic(self):
        mw = MicroWord(Opcode.ABSDIFF, Source.FIFO1, Source.FIFO2, Dest.R1)
        assert "absdiff" in str(mw)


class TestSourceHelpers:
    @pytest.mark.parametrize("stage,lane", [(1, 1), (4, 1), (1, 2), (4, 2)])
    def test_rp_roundtrip(self, stage, lane):
        src = Source.rp(stage, lane)
        assert src.is_feedback
        assert src.feedback_stage == stage
        assert src.feedback_lane == lane

    def test_rp_stage_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Source.rp(5, 1)
        with pytest.raises(ConfigurationError):
            Source.rp(0, 1)

    def test_rp_lane_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Source.rp(1, 3)

    def test_non_feedback_has_no_stage(self):
        assert not Source.IN1.is_feedback
        with pytest.raises(ConfigurationError):
            _ = Source.IN1.feedback_stage

    def test_all_rp_codes_distinct(self):
        codes = {Source.rp(s, l) for s in range(1, 5) for l in (1, 2)}
        assert len(codes) == 8


class TestEncoding:
    def test_nop_encodes_to_zero_fields(self):
        raw = encode(MicroWord())
        assert decode(raw) == MicroWord()

    @given(microwords())
    def test_roundtrip(self, mw):
        assert decode(encode(mw)) == mw

    @given(microwords())
    def test_bytes_roundtrip(self, mw):
        blob = encode_bytes(mw)
        assert len(blob) == isa.MICROWORD_BYTES
        assert decode_bytes(blob) == mw

    @given(microwords())
    def test_fits_in_40_bits(self, mw):
        assert 0 <= encode(mw) < (1 << isa.MICROWORD_BITS)

    def test_decode_rejects_oversized(self):
        with pytest.raises(ConfigurationError):
            decode(1 << 40)

    def test_decode_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            decode(-1)

    def test_decode_rejects_illegal_opcode(self):
        raw = 31 << 35  # opcode 31 unused
        with pytest.raises(ConfigurationError, match="illegal"):
            decode(raw)

    def test_decode_bytes_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError):
            decode_bytes(b"\x00\x00")

    @given(microwords(), microwords())
    def test_injective(self, a, b):
        if a != b:
            assert encode(a) != encode(b)
