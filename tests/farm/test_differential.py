"""Differential property: a farm job is bit-identical to direct execution.

The serving layer's correctness contract in one sentence: submitting a
job to a :class:`~repro.farm.farm.RingFarm` — any worker count, with one
live migration mid-run — produces exactly the tap streams and the full
:func:`~repro.core.snapshot.state_digest` of running the same plane,
streams and FIFO preloads on a fresh ring directly.  Hypothesis draws
the fabric configuration from the same replayable spec strategy the
backend differential suite uses (``tests.core.test_fuzz.ring_specs``),
so the farm path is fuzzed over the same configuration space as the
execution engines themselves.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings, strategies as st

from repro.core.ring import Ring, RingGeometry
from repro.farm import FarmJob, RingFarm

from tests.core.test_fuzz import apply_spec, ring_specs
from tests.farm.test_farm import direct_run


def spec_job(spec: dict, stream, cycles: int) -> FarmJob:
    """Turn a drawn fabric spec into one farm job (plane + stimuli)."""
    geometry = RingGeometry(layers=spec["layers"], width=spec["width"])
    builder = Ring(geometry, plan_cache=0)
    apply_spec(builder, spec)  # FIFO loads land in the throwaway ring
    fifos = [(layer, pos, channel, list(words))
             for layer, pos, _mw, _local, _routes, loads in spec["cells"]
             for channel, words in sorted(loads.items()) if words]
    return FarmJob(
        tenant="prop",
        layers=spec["layers"],
        width=spec["width"],
        plane=builder.config.capture_plane(),
        cycles=cycles,
        streams={0: list(stream)},
        taps=[(0, 0, None),
              (spec["layers"] - 1, spec["width"] - 1, None)],
        fifos=fifos,
    )


class TestFarmDifferential:
    @given(spec=ring_specs(),
           stream=st.lists(st.integers(0, 0xFFFF), max_size=12),
           cycles=st.integers(min_value=4, max_value=24),
           workers=st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_farm_with_migration_matches_direct(self, spec, stream,
                                                cycles, workers):
        job = spec_job(spec, stream, cycles)
        want_taps, want_digest = direct_run(job)

        async def go():
            async with RingFarm(workers=workers,
                                use_processes=False) as farm:
                result = await farm.submit(job, migrate_at=cycles // 2)
                return farm.jobs_migrated, result

        migrated, result = asyncio.run(go())
        assert migrated == 1 and result.migrated
        assert result.taps == want_taps
        assert result.digest == want_digest
        assert result.cycles_run == cycles
