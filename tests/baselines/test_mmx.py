"""Tests for the MMX instruction-level baseline."""

import numpy as np
import pytest

from repro.baselines.mmx import MmxInstr, MmxMachine, mmx_block_match
from repro.kernels.reference import full_search
from repro.errors import SimulationError


class TestMmxOps:
    def setup_method(self):
        self.m = MmxMachine()

    def test_movq_reg_to_reg(self):
        self.m.mm["mm1"] = 0x1122334455667788
        self.m.execute(MmxInstr("movq", "mm0", "mm1"))
        assert self.m.mm["mm0"] == 0x1122334455667788

    def test_movq_load_little_endian(self):
        self.m.memory[0:8] = np.arange(1, 9, dtype=np.uint8)
        self.m.execute(MmxInstr("movq", "mm0", address=0, is_mem=True))
        assert self.m.mm["mm0"] == 0x0807060504030201

    def test_psubusb_saturates_at_zero(self):
        self.m.mm["mm0"] = 0x05_10  # bytes [0x10, 0x05, 0...]
        self.m.mm["mm1"] = 0x10_05
        self.m.execute(MmxInstr("psubusb", "mm0", "mm1"))
        # 0x10-0x05=0x0B; 0x05-0x10 saturates to 0
        assert self.m.mm["mm0"] == 0x00_0B

    def test_psubusb_por_computes_absolute_difference(self):
        a, b = 0x30_10, 0x10_40
        self.m.mm["mm0"] = a
        self.m.mm["mm1"] = b
        self.m.mm["mm2"] = a
        self.m.execute(MmxInstr("psubusb", "mm0", "mm1"))
        self.m.execute(MmxInstr("psubusb", "mm1", "mm2"))
        self.m.execute(MmxInstr("por", "mm0", "mm1"))
        assert self.m.mm["mm0"] == 0x20_30  # |0x10-0x40|,|0x30-0x10|

    def test_punpcklbw_zero_extends(self):
        self.m.mm["mm0"] = 0x0403020104030201
        self.m.mm["mm7"] = 0
        self.m.execute(MmxInstr("punpcklbw", "mm0", "mm7"))
        assert self.m.mm["mm0"] == 0x0004000300020001

    def test_punpckhbw_takes_high_bytes(self):
        self.m.mm["mm0"] = 0x08070605_04030201
        self.m.mm["mm7"] = 0
        self.m.execute(MmxInstr("punpckhbw", "mm0", "mm7"))
        assert self.m.mm["mm0"] == 0x0008000700060005

    def test_paddw_wraps_lanes(self):
        self.m.mm["mm0"] = 0xFFFF
        self.m.mm["mm1"] = 0x0002
        self.m.execute(MmxInstr("paddw", "mm0", "mm1"))
        assert self.m.mm["mm0"] == 0x0001

    def test_psrlq(self):
        self.m.mm["mm0"] = 0x12345678_9ABCDEF0
        self.m.execute(MmxInstr("psrlq", "mm0", imm=32))
        assert self.m.mm["mm0"] == 0x12345678

    def test_movd(self):
        self.m.mm["mm5"] = 0xAABBCCDD_11223344
        self.m.execute(MmxInstr("movd", "eax", "mm5"))
        assert self.m.scalar["eax"] == 0x11223344

    def test_unknown_instruction(self):
        with pytest.raises(SimulationError):
            self.m.execute(MmxInstr("psadbw", "mm0", "mm1"))  # SSE, not MMX

    def test_load_bounds(self):
        with pytest.raises(SimulationError):
            self.m.execute(MmxInstr("movq", "mm0",
                                    address=len(self.m.memory) - 4,
                                    is_mem=True))


class TestPairing:
    def test_independent_instructions_pair(self):
        m = MmxMachine()
        m.run([MmxInstr("pxor", "mm0", "mm0"),
               MmxInstr("pxor", "mm1", "mm1")])
        assert m.cycles == 1

    def test_dependent_instructions_serialize(self):
        m = MmxMachine()
        m.run([MmxInstr("pxor", "mm0", "mm0"),
               MmxInstr("por", "mm1", "mm0")])  # reads mm0
        assert m.cycles == 2

    def test_two_loads_do_not_pair(self):
        m = MmxMachine()
        m.run([MmxInstr("movq", "mm0", address=0, is_mem=True),
               MmxInstr("movq", "mm1", address=8, is_mem=True)])
        assert m.cycles == 2

    def test_nonpairable_blocks(self):
        m = MmxMachine()
        m.run([MmxInstr("jnz", pairable=False),
               MmxInstr("pxor", "mm0", "mm0")])
        assert m.cycles == 2

    def test_unaligned_load_penalty(self):
        m = MmxMachine(unaligned_penalty=2)
        m.run([MmxInstr("movq", "mm0", address=3, is_mem=True)])
        assert m.cycles == 3


class TestBlockMatch:
    def test_bit_exact_vs_reference(self, rng):
        ref = rng.integers(0, 256, (8, 8)).astype(np.uint8)
        area = rng.integers(0, 256, (16, 16)).astype(np.uint8)
        expected_best, expected_sad, expected_map = full_search(ref, area)
        result = mmx_block_match(ref, area)
        assert np.array_equal(result.sad_map, expected_map)
        assert result.best == expected_best

    def test_paper_workload_ratio(self, rng):
        """Table 1's shape: the Ring is 'almost 8 times faster' than
        the MMX routine on the 8x8 / +/-8 search."""
        from repro.kernels.motion_estimation import cycle_model

        ref = rng.integers(0, 256, (8, 8)).astype(np.uint8)
        area = rng.integers(0, 256, (24, 24)).astype(np.uint8)
        result = mmx_block_match(ref, area)
        ratio = result.cycles / cycle_model()
        assert 6.0 <= ratio <= 10.0

    def test_block_width_must_be_8(self):
        with pytest.raises(SimulationError, match="8-pixel"):
            mmx_block_match(np.zeros((4, 4), dtype=np.uint8),
                            np.zeros((8, 8), dtype=np.uint8))

    def test_instruction_count_positive(self, rng):
        ref = rng.integers(0, 256, (8, 8)).astype(np.uint8)
        area = rng.integers(0, 256, (12, 12)).astype(np.uint8)
        result = mmx_block_match(ref, area)
        assert result.instructions > result.cycles  # pairing happened
