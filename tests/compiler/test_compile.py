"""Tests for scheduling + code generation: fabric output == golden."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import DataflowGraph, compile_graph
from repro.compiler.graph import CompileError
from repro.compiler.schedule import schedule
from repro.core.ring import RingGeometry

SIG = [5, 7, 9, -4, 11, 0, 3, 8, -2, 6]


def run_both(g, streams):
    """Run golden evaluation and fabric execution; return both."""
    prog = compile_graph(g)
    if not isinstance(streams, dict):
        streams = {0: streams}
    return g.evaluate(streams), prog.run(streams), prog


class TestBasicPrograms:
    def test_scale_and_offset(self):
        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("add", g.op("mul", x, g.const(3)), g.const(7)))
        golden, fabric, prog = run_both(g, SIG)
        assert fabric[y] == golden[y]
        assert prog.latency == 2

    def test_unary_chain(self):
        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("abs", g.op("neg", x)))
        golden, fabric, _ = run_both(g, SIG)
        assert fabric[y] == golden[y]

    def test_two_input_streams(self):
        g = DataflowGraph()
        a, b = g.input(0), g.input(1)
        y = g.output(g.op("absdiff", a, b))
        streams = {0: SIG, 1: list(reversed(SIG))}
        golden, fabric, _ = run_both(g, streams)
        assert fabric[y] == golden[y]

    def test_multiple_outputs(self):
        g = DataflowGraph()
        x = g.input(0)
        y1 = g.output(g.op("shl", x, g.const(1)))
        y2 = g.output(g.op("asr", x, g.const(1)))
        golden, fabric, _ = run_both(g, SIG)
        assert fabric[y1] == golden[y1]
        assert fabric[y2] == golden[y2]


class TestDelays:
    def test_first_difference(self):
        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("sub", x, g.delay(x, 1)))
        golden, fabric, _ = run_both(g, SIG)
        assert fabric[y] == golden[y]

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_all_pipeline_depths(self, d):
        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("add", x, g.delay(x, d)))
        golden, fabric, _ = run_both(g, SIG)
        assert fabric[y] == golden[y]

    def test_delay_of_interior_node(self):
        g = DataflowGraph()
        x = g.input(0)
        sq = g.op("mul", x, x)
        y = g.output(g.op("sub", sq, g.delay(sq, 2)))
        golden, fabric, _ = run_both(g, SIG)
        assert fabric[y] == golden[y]

    def test_delay_too_deep(self):
        g = DataflowGraph()
        x = g.input(0)
        g.output(g.op("add", x, g.delay(x, 5)))
        with pytest.raises(CompileError, match="pipeline"):
            compile_graph(g)

    def test_delaying_constant_rejected(self):
        g = DataflowGraph()
        x = g.input(0)
        c = g.const(5)
        g.output(g.op("add", x, g.delay(c, 1)))
        with pytest.raises(CompileError, match="constant"):
            compile_graph(g)


class TestFirViaCompiler:
    """A 3-tap FIR expressed as a plain dataflow graph."""

    def test_matches_reference(self):
        from repro.kernels.reference import fir as ref_fir

        taps = [2, -3, 4]
        g = DataflowGraph()
        x = g.input(0)
        terms = [g.op("mul", x, g.const(taps[0])),
                 g.op("mul", g.delay(x, 1), g.const(taps[1])),
                 g.op("mul", g.delay(x, 2), g.const(taps[2]))]
        y = g.output(g.op("add", g.op("add", terms[0], terms[1]),
                          terms[2]))
        # the tap tree is 3 nodes wide at one level: needs a width-3 ring
        prog = compile_graph(g, RingGeometry(layers=4, width=3))
        golden = g.evaluate({0: SIG})
        fabric = prog.run({0: SIG})
        assert fabric[y] == golden[y] == ref_fir(SIG, taps)


class TestScheduling:
    def test_pass_nodes_inserted_for_level_gaps(self):
        g = DataflowGraph()
        x = g.input(0)
        deep = g.op("abs", g.op("neg", g.op("mov", x)))
        y = g.output(g.op("add", deep, x))  # x needs a 3-level relay
        placement = schedule(g)
        passes = [p for p in placement.phys if p.graph_node is None]
        assert len(passes) >= 2
        golden, fabric, _ = run_both(g, SIG)
        assert fabric[y] == golden[y]

    def test_relays_are_shared(self):
        g = DataflowGraph()
        x = g.input(0)
        a = g.op("add", x, g.delay(x, 1))
        b = g.op("sub", x, g.delay(x, 1))
        g.output(a)
        g.output(b)
        placement = schedule(g)
        passes = [p for p in placement.phys if p.graph_node is None]
        assert len(passes) == 1  # one shared input relay

    def test_width_overflow_detected(self):
        g = DataflowGraph()
        x = g.input(0)
        for _ in range(3):
            g.output(g.op("mov", x))
        with pytest.raises(CompileError, match="wide"):
            schedule(g, width=2)

    def test_depth_overflow_detected(self):
        g = DataflowGraph()
        x = g.input(0)
        node = x
        for _ in range(5):
            node = g.op("mov", node)
        g.output(node)
        with pytest.raises(CompileError, match="layers"):
            compile_graph(g, RingGeometry(layers=3, width=2))

    def test_two_constants_rejected(self):
        g = DataflowGraph()
        g.input(0)
        g.output(g.op("add", g.const(1), g.const(2)))
        with pytest.raises(CompileError, match="one constant"):
            compile_graph(g)

    def test_output_must_be_operator(self):
        g = DataflowGraph()
        x = g.input(0)
        g.output(x)
        with pytest.raises(CompileError, match="operator"):
            compile_graph(g)


class TestAssemblyExport:
    def test_roundtrip_through_assembler(self):
        """The exported assembly reassembles to identical behaviour."""
        from repro import word
        from repro.asm import assemble, load_system

        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("add", g.op("mul", x, g.const(3)),
                          g.delay(x, 1)))
        prog = compile_graph(g)
        golden = g.evaluate({0: SIG})[y]

        obj = assemble(prog.to_assembly(), layers=prog.geometry.layers,
                       width=prog.geometry.width)
        system = load_system(obj)
        system.data.stream(0, [word.from_signed(v) for v in SIG])
        p = prog.placement.phys[prog.placement.outputs[0][1]]
        tap = system.data.add_tap(p.level - 1, p.lane, skip=p.level - 1,
                                  limit=len(SIG))
        system.run(len(SIG) + prog.latency)
        assert [word.to_signed(v) for v in tap.samples] == golden


@st.composite
def random_graphs(draw):
    """Random small DAGs over one input stream."""
    g = DataflowGraph()
    x = g.input(0)
    nodes = [x]
    unary = ["abs", "neg", "not", "mov"]
    binary = ["add", "sub", "mul", "min", "max", "absdiff", "xor"]
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        if draw(st.booleans()):
            src = draw(st.sampled_from(nodes))
            nodes.append(g.op(draw(st.sampled_from(unary)), src))
        else:
            a = draw(st.sampled_from(nodes))
            use_const = draw(st.booleans())
            b = g.const(draw(st.integers(-20, 20))) if use_const \
                else draw(st.sampled_from(nodes))
            nodes.append(g.op(draw(st.sampled_from(binary)), a, b))
    # output the last operator (guaranteed to exist)
    ops = [n for n in nodes[1:]]
    g.output(draw(st.sampled_from(ops)))
    return g


class TestPropertyFabricMatchesGolden:
    @given(random_graphs(),
           st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs(self, g, sig):
        try:
            prog = compile_graph(g)
        except CompileError:
            return  # unmappable shapes (too wide) are allowed to reject
        golden = g.evaluate({0: sig})
        fabric = prog.run({0: sig})
        assert fabric == golden


class TestConfigureErrors:
    def test_ring_too_small_for_program(self):
        from repro.core.ring import Ring

        g = DataflowGraph()
        x = g.input(0)
        node = x
        for _ in range(4):
            node = g.op("mov", node)
        g.output(node)
        prog = compile_graph(g)          # needs 4 layers
        small = Ring(RingGeometry(layers=2, width=2))
        with pytest.raises(CompileError, match="needs"):
            prog.configure(small)

    def test_larger_ring_accepted(self):
        from repro.core.ring import Ring

        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("abs", x))
        prog = compile_graph(g)
        big = Ring(RingGeometry.ring(16))
        outputs = prog.run({0: [1, -2, 3]}, ring=big)
        assert outputs[y] == [1, 2, 3]
