"""End-to-end streaming pipelines: context-switched multi-kernel scenarios.

Two complete DSP products built from the scenario-library recipes, each
**time-multiplexing one fabric between two configuration planes
mid-stream** — the paper's dynamically-reconfigurable pitch as a
runnable workload:

* :func:`run_synth_voice` — a polyphonic synth voice.  Plane A (lanes
  0/1/3) carries two serial NCO voices (phase accumulator + parabolic
  shaper), an AVG2 voice mixer and a MULH VCA driven by a host envelope
  stream; plane B is a recirculating echo confined to lane 2.  The host
  alternates planes every *chunk* cycles through
  :meth:`~repro.core.config_memory.ConfigMemory.apply_plane`.
* :func:`run_effects_chain` — a multi-stage effects chain: plane C is a
  compiled-style chorus + master VCA on lane 0 (feedback-pipeline
  delays), plane D the lane-1 echo.

Both lean on two architectural facts.  **State freezing:** a NOP never
writes OUT, so the Dnodes of the parked plane (NCO phase accumulators,
the echo's recirculating samples) hold their values bit-exactly while
the other plane runs, and resume as if no cycles passed.  **Plan
re-adoption:** re-applying a captured plane reproduces the same
configuration fingerprint, so after the first A/B round the plan cache
re-adopts each plane with zero interpreted cycles and zero recompiles
(the PR 4 contract, asserted by the integration suite).

The chorus plane alone carries state in switch feedback pipelines, which
*do* shift while the other plane runs — the driver re-streams a
4-sample overlap prefix per chunk (overlap-save) so every chunk is
self-contained; the golden models in :mod:`repro.kernels.reference`
(:func:`~repro.kernels.reference.synth_voice_pipeline`,
:func:`~repro.kernels.reference.effects_chain_pipeline`) remain plain
whole-stream functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro import word
from repro.core.config_memory import ConfigPlane
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.host.system import RingSystem
from repro.kernels.effects import build_echo
from repro.kernels.taps import tap_lane0

# -- synth voice plane geometry ----------------------------------------

#: Fabric shape both synth planes share; the echo delay equals LAYERS.
SYNTH_GEOMETRY = RingGeometry(layers=13, width=4)

#: Layer/lane publishing the dry voice samples (plane A).
VOICE_OUT = (12, 0)

#: Lane reserved for the echo plane's recirculating delay line.
SYNTH_ECHO_LANE = 2

# -- effects chain plane geometry --------------------------------------

#: Fabric shape of the effects chain; echo delay equals LAYERS.
EFFECTS_GEOMETRY = RingGeometry(layers=10, width=2)

#: Chorus depth of the effects chain (one switch feedback pipeline).
EFFECTS_CHORUS_DEPTH = 4

#: Overlap-save prefix re-streamed per chorus chunk (covers the Rp
#: span) and the chorus plane's tap skip (prefix + 3 pipeline stages).
_CHORUS_PREFIX = 4
_CHORUS_SKIP = _CHORUS_PREFIX + 3

#: Layer/lane publishing the chorus+VCA samples (plane C, lane 0).
EFFECTS_OUT = (3, 0)

#: Lane reserved for the effects chain's echo plane.
EFFECTS_ECHO_LANE = 1


@dataclass
class ScenarioResult:
    """Outcome of a context-switched pipeline run."""

    outputs: List[int]          # final (wet) stream
    stage_outputs: List[int]    # intermediate stream between the planes
    cycles: int
    switches: int               # apply_plane() invocations
    plan_hits: int              # plan-cache re-adoptions on the ring
    plan_compiles: int          # fresh plan compilations on the ring
    chunk: int


def _mov(src_lane: int) -> MicroWord:
    return MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT)


def _configure_voice(ring: Ring, fcw_a: int, fcw_b: int) -> None:
    """Plane A: two serial NCO voices + mixer + envelope VCA.

    Voice A occupies lanes 0/1 of layers 0-4, voice B the same lanes of
    layers 5-9 while lane 3 relays voice A's finished samples past it;
    layers 10-12 mix, apply the host envelope (channel 0) and rescale.
    Lane :data:`SYNTH_ECHO_LANE` is untouched — it belongs to plane B.
    """
    cfg = ring.config
    for base, fcw in ((0, fcw_a), (5, fcw_b)):
        # Phase accumulator: the SELF recurrence publishes fcw*(n+1).
        cfg.write_microword(base, 0, MicroWord(
            Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT,
            imm=word.from_signed(int(fcw))))
        # Shaper: lane 0 relays the phase, lane 1 carries 32767-|p|.
        cfg.write_switch_route(base + 1, 0, 1, PortSource.up(0))
        cfg.write_microword(base + 1, 0, _mov(0))
        cfg.write_switch_route(base + 1, 1, 1, PortSource.up(0))
        cfg.write_microword(base + 1, 1, MicroWord(
            Opcode.ABS, Source.IN1, dst=Dest.OUT))
        cfg.write_switch_route(base + 2, 0, 1, PortSource.up(0))
        cfg.write_microword(base + 2, 0, _mov(0))
        cfg.write_switch_route(base + 2, 1, 1, PortSource.up(1))
        cfg.write_microword(base + 2, 1, MicroWord(
            Opcode.SUB, Source.IMM, Source.IN1, Dest.OUT,
            imm=word.from_signed(32767)))
        cfg.write_switch_route(base + 3, 0, 1, PortSource.up(0))
        cfg.write_switch_route(base + 3, 0, 2, PortSource.up(1))
        cfg.write_microword(base + 3, 0, MicroWord(
            Opcode.MULH, Source.IN1, Source.IN2, Dest.OUT))
        cfg.write_switch_route(base + 4, 0, 1, PortSource.up(0))
        cfg.write_microword(base + 4, 0, MicroWord(
            Opcode.SHL, Source.IN1, Source.IMM, Dest.OUT, imm=2))
    # Lane 3 relays voice A's samples past voice B's layers.
    cfg.write_switch_route(5, 3, 1, PortSource.up(0))
    cfg.write_microword(5, 3, _mov(0))
    for layer in range(6, 10):
        cfg.write_switch_route(layer, 3, 1, PortSource.up(3))
        cfg.write_microword(layer, 3, _mov(3))
    # Mixer, envelope VCA (host channel 0), output rescale.
    cfg.write_switch_route(10, 0, 1, PortSource.up(0))
    cfg.write_switch_route(10, 0, 2, PortSource.up(3))
    cfg.write_microword(10, 0, MicroWord(
        Opcode.AVG2, Source.IN1, Source.IN2, Dest.OUT))
    cfg.write_switch_route(11, 0, 1, PortSource.up(0))
    cfg.write_switch_route(11, 0, 2, PortSource.host(0))
    cfg.write_microword(11, 0, MicroWord(
        Opcode.MULH, Source.IN1, Source.IN2, Dest.OUT))
    cfg.write_switch_route(12, 0, 1, PortSource.up(0))
    cfg.write_microword(12, 0, MicroWord(
        Opcode.SHL, Source.IN1, Source.IMM, Dest.OUT, imm=1))


def _configure_chorus_vca(ring: Ring, master_gain: int) -> None:
    """Plane C: chorus (Rp depth-4 voice) + master VCA on lane 0."""
    cfg = ring.config
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    cfg.write_microword(0, 0, _mov(0))
    cfg.write_switch_route(1, 0, 1, PortSource.up(0))
    cfg.write_microword(1, 0, MicroWord(
        Opcode.AVG2, Source.IN1,
        Source.rp(EFFECTS_CHORUS_DEPTH, 1), Dest.OUT))
    cfg.write_switch_route(2, 0, 1, PortSource.up(0))
    cfg.write_microword(2, 0, MicroWord(
        Opcode.MULH, Source.IN1, Source.IMM, Dest.OUT,
        imm=word.from_signed(int(master_gain))))
    cfg.write_switch_route(3, 0, 1, PortSource.up(0))
    cfg.write_microword(3, 0, MicroWord(
        Opcode.SHL, Source.IN1, Source.IMM, Dest.OUT, imm=1))


def capture_plane(geometry: RingGeometry,
                  configure: Callable[[Ring], None]) -> ConfigPlane:
    """Configure a scratch interpreter ring, snapshot the full plane."""
    scratch = Ring(geometry, fastpath=False)
    configure(scratch)
    return scratch.config.capture_plane()


def _advance(system: RingSystem, cycles: int, per_cycle: bool) -> None:
    if per_cycle:
        for _ in range(cycles):
            system.step()
    else:
        system.run(cycles)


def _collect(system: RingSystem, tap) -> List[int]:
    samples = [word.to_signed(v) for v in tap_lane0(tap)]
    system.data.taps.remove(tap)
    return samples


def run_synth_voice(envelope: Sequence[int],
                    fcw_a: int = 1400, fcw_b: int = 1750,
                    echo_gain: int = 22000, chunk: int = 32,
                    ring: Optional[Ring] = None,
                    per_cycle: bool = False) -> ScenarioResult:
    """Run the polyphonic synth voice pipeline, A/B-switching per chunk.

    Bit-exact against
    :func:`repro.kernels.reference.synth_voice_pipeline` with
    ``echo_delay = SYNTH_GEOMETRY.layers`` (wet stream; the dry stream
    matches :func:`~repro.kernels.reference.synth_voice_dry`).
    """
    total = len(envelope)
    if chunk < 1 or total % chunk:
        raise ValueError(
            f"envelope length {total} must be a positive multiple of "
            f"chunk {chunk}")
    if ring is None:
        ring = Ring(SYNTH_GEOMETRY)
    if (ring.geometry.layers != SYNTH_GEOMETRY.layers
            or ring.geometry.width < SYNTH_GEOMETRY.width):
        raise ValueError(
            f"synth voice needs a {SYNTH_GEOMETRY.layers}x"
            f"{SYNTH_GEOMETRY.width} ring, got "
            f"{ring.geometry.layers}x{ring.geometry.width}")
    voice_plane = capture_plane(
        ring.geometry, lambda r: _configure_voice(r, fcw_a, fcw_b))
    echo_plane = capture_plane(
        ring.geometry,
        lambda r: build_echo(echo_gain, ring=r, lane=SYNTH_ECHO_LANE))
    system = RingSystem(ring)
    dry_all: List[int] = []
    wet_all: List[int] = []
    switches = 0
    for k in range(total // chunk):
        env_chunk = envelope[k * chunk:(k + 1) * chunk]
        ring.config.apply_plane(voice_plane)
        switches += 1
        system.data.stream(
            0, [word.from_signed(int(v)) for v in env_chunk])
        tap = system.data.add_tap(*VOICE_OUT, limit=chunk)
        _advance(system, chunk, per_cycle)
        dry = _collect(system, tap)
        dry_all.extend(dry)
        ring.config.apply_plane(echo_plane)
        switches += 1
        system.data.stream(0, [word.from_signed(v) for v in dry])
        tap = system.data.add_tap(0, SYNTH_ECHO_LANE, limit=chunk)
        _advance(system, chunk, per_cycle)
        wet_all.extend(_collect(system, tap))
    return ScenarioResult(
        outputs=wet_all, stage_outputs=dry_all, cycles=system.cycles,
        switches=switches, plan_hits=ring.plan_cache.hits,
        plan_compiles=ring.plan_compiles, chunk=chunk)


def run_effects_chain(signal: Sequence[int],
                      master_gain: int = 26000, echo_gain: int = 20000,
                      chunk: int = 32, ring: Optional[Ring] = None,
                      per_cycle: bool = False) -> ScenarioResult:
    """Run the chorus -> VCA -> echo chain, C/D-switching per chunk.

    The chorus plane's delay state lives in switch feedback pipelines
    (clobbered while the echo plane runs), so each chorus chunk
    re-streams a :data:`_CHORUS_PREFIX`-sample overlap and skips the
    warm-up outputs; the echo plane's state lives in Dnode OUTs and
    simply freezes.  Bit-exact against
    :func:`repro.kernels.reference.effects_chain_pipeline` with
    ``depth = EFFECTS_CHORUS_DEPTH`` and
    ``echo_delay = EFFECTS_GEOMETRY.layers``.
    """
    total = len(signal)
    if chunk < 1 or total % chunk:
        raise ValueError(
            f"signal length {total} must be a positive multiple of "
            f"chunk {chunk}")
    if ring is None:
        ring = Ring(EFFECTS_GEOMETRY)
    if (ring.geometry.layers != EFFECTS_GEOMETRY.layers
            or ring.geometry.width < EFFECTS_GEOMETRY.width):
        raise ValueError(
            f"effects chain needs a {EFFECTS_GEOMETRY.layers}x"
            f"{EFFECTS_GEOMETRY.width} ring, got "
            f"{ring.geometry.layers}x{ring.geometry.width}")
    chorus_plane = capture_plane(
        ring.geometry, lambda r: _configure_chorus_vca(r, master_gain))
    echo_plane = capture_plane(
        ring.geometry,
        lambda r: build_echo(echo_gain, ring=r, lane=EFFECTS_ECHO_LANE))
    system = RingSystem(ring)
    samples = [int(v) for v in signal]
    stage_all: List[int] = []
    wet_all: List[int] = []
    switches = 0
    for k in range(total // chunk):
        lo = k * chunk
        prefix = ([0] * _CHORUS_PREFIX if k == 0
                  else samples[lo - _CHORUS_PREFIX:lo])
        ring.config.apply_plane(chorus_plane)
        switches += 1
        system.data.stream(0, [word.from_signed(v) for v in
                               prefix + samples[lo:lo + chunk]])
        tap = system.data.add_tap(*EFFECTS_OUT, skip=_CHORUS_SKIP,
                                  limit=chunk)
        _advance(system, chunk + _CHORUS_SKIP, per_cycle)
        stage = _collect(system, tap)
        stage_all.extend(stage)
        ring.config.apply_plane(echo_plane)
        switches += 1
        system.data.stream(0, [word.from_signed(v) for v in stage])
        tap = system.data.add_tap(0, EFFECTS_ECHO_LANE, limit=chunk)
        _advance(system, chunk, per_cycle)
        wet_all.extend(_collect(system, tap))
    return ScenarioResult(
        outputs=wet_all, stage_outputs=stage_all, cycles=system.cycles,
        switches=switches, plan_hits=ring.plan_cache.hits,
        plan_compiles=ring.plan_compiles, chunk=chunk)
