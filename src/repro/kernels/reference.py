"""Golden reference implementations of every kernel used in the paper.

These are plain-integer/numpy implementations with the exact arithmetic
the fabric uses (floor divisions implemented as arithmetic shifts, no
floating point), so fabric outputs can be compared bit-for-bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

# ----------------------------------------------------------------------
# Block matching / motion estimation (Table 1)
# ----------------------------------------------------------------------


def sad(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """Sum of absolute differences between two equal-shape blocks."""
    if block_a.shape != block_b.shape:
        raise SimulationError(
            f"SAD shapes differ: {block_a.shape} vs {block_b.shape}"
        )
    return int(np.abs(block_a.astype(np.int64)
                      - block_b.astype(np.int64)).sum())


def full_search(reference_block: np.ndarray, search_area: np.ndarray,
                ) -> Tuple[Tuple[int, int], int, np.ndarray]:
    """Exhaustive block matching of *reference_block* inside *search_area*.

    Every alignment of the block inside the search area is a candidate
    (for an 8x8 block in a 24x24 area this is the paper's 17x17 = 289
    candidates for +/-8 pixel displacement).

    Returns:
        ``((dy, dx), best_sad, sad_map)`` where ``(dy, dx)`` is the
        top-left offset of the best candidate and ``sad_map`` holds the
        SAD of every candidate position.
    """
    bh, bw = reference_block.shape
    sh, sw = search_area.shape
    if sh < bh or sw < bw:
        raise SimulationError(
            f"search area {search_area.shape} smaller than block "
            f"{reference_block.shape}"
        )
    ny, nx = sh - bh + 1, sw - bw + 1
    sad_map = np.zeros((ny, nx), dtype=np.int64)
    for dy in range(ny):
        for dx in range(nx):
            sad_map[dy, dx] = sad(reference_block,
                                  search_area[dy:dy + bh, dx:dx + bw])
    best = np.unravel_index(int(np.argmin(sad_map)), sad_map.shape)
    return (int(best[0]), int(best[1])), int(sad_map[best]), sad_map


# ----------------------------------------------------------------------
# 5/3 lifting wavelet (Table 2) — Le Gall, JPEG2000 reversible filter
# ----------------------------------------------------------------------


def lifting53_forward(signal: Sequence[int]) -> Tuple[List[int], List[int]]:
    """One level of the forward 5/3 lifting transform on a 1-D signal.

    Uses symmetric extension at the borders (JPEG2000 convention)::

        d[n] = x[2n+1] - floor((x[2n] + x[2n+2]) / 2)
        s[n] = x[2n]   + floor((d[n-1] + d[n] + 2) / 4)

    Args:
        signal: even-length integer sequence.

    Returns:
        ``(approximation, detail)`` coefficient lists, each half length.
    """
    x = [int(v) for v in signal]
    n = len(x)
    if n < 2 or n % 2 != 0:
        raise SimulationError(
            f"lifting needs an even-length signal of >= 2, got {n}"
        )
    half = n // 2

    def even(i: int) -> int:
        # symmetric extension: x[2*half] -> x[2*half - 2]
        return x[2 * i] if i < half else x[2 * (half - 1)]

    detail = [x[2 * i + 1] - ((even(i) + even(i + 1)) >> 1)
              for i in range(half)]

    def d_ext(i: int) -> int:
        return detail[i] if i >= 0 else detail[0]

    approx = [x[2 * i] + ((d_ext(i - 1) + detail[i] + 2) >> 2)
              for i in range(half)]
    return approx, detail


def lifting53_inverse(approx: Sequence[int],
                      detail: Sequence[int]) -> List[int]:
    """Invert :func:`lifting53_forward` exactly (reversible transform)."""
    s = [int(v) for v in approx]
    d = [int(v) for v in detail]
    if len(s) != len(d):
        raise SimulationError(
            f"approx/detail lengths differ: {len(s)} vs {len(d)}"
        )
    half = len(s)

    def d_ext(i: int) -> int:
        return d[i] if i >= 0 else d[0]

    even = [s[i] - ((d_ext(i - 1) + d[i] + 2) >> 2) for i in range(half)]

    def even_ext(i: int) -> int:
        return even[i] if i < half else even[half - 1]

    odd = [d[i] + ((even[i] + even_ext(i + 1)) >> 1) for i in range(half)]
    out = []
    for e, o in zip(even, odd):
        out.append(e)
        out.append(o)
    return out


def dwt53_2d(image: np.ndarray) -> np.ndarray:
    """One 2-D 5/3 DWT level: rows then columns, subbands packed
    ``[[LL, HL], [LH, HH]]`` (approximation top-left).
    """
    if image.ndim != 2:
        raise SimulationError(f"expected a 2-D image, got {image.shape}")
    rows, cols = image.shape
    temp = np.zeros_like(image, dtype=np.int64)
    for r in range(rows):
        approx, detail = lifting53_forward(image[r, :])
        temp[r, :cols // 2] = approx
        temp[r, cols // 2:] = detail
    out = np.zeros_like(temp)
    for c in range(cols):
        approx, detail = lifting53_forward(temp[:, c])
        out[:rows // 2, c] = approx
        out[rows // 2:, c] = detail
    return out


def idwt53_2d(coeffs: np.ndarray) -> np.ndarray:
    """Invert :func:`dwt53_2d` exactly."""
    if coeffs.ndim != 2:
        raise SimulationError(f"expected a 2-D array, got {coeffs.shape}")
    rows, cols = coeffs.shape
    temp = np.zeros_like(coeffs, dtype=np.int64)
    for c in range(cols):
        column = lifting53_inverse(coeffs[:rows // 2, c],
                                   coeffs[rows // 2:, c])
        temp[:, c] = column
    out = np.zeros_like(temp)
    for r in range(rows):
        row = lifting53_inverse(temp[r, :cols // 2], temp[r, cols // 2:])
        out[r, :] = row
    return out


def dwt53_2d_multilevel(image: np.ndarray, levels: int) -> np.ndarray:
    """A JPEG2000-style dyadic pyramid: re-transform the LL subband.

    Level *k* transforms the top-left ``(H/2^k-1) x (W/2^k-1)`` corner of
    the previous result.  Dimensions must stay even at every level.
    """
    if levels < 1:
        raise SimulationError(f"levels must be >= 1, got {levels}")
    out = np.asarray(image).astype(np.int64).copy()
    rows, cols = out.shape
    for _ in range(levels):
        if rows % 2 or cols % 2 or rows < 2 or cols < 2:
            raise SimulationError(
                f"subband {rows}x{cols} cannot be split further"
            )
        out[:rows, :cols] = dwt53_2d(out[:rows, :cols])
        rows //= 2
        cols //= 2
    return out


def idwt53_2d_multilevel(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Exact inverse of :func:`dwt53_2d_multilevel`."""
    if levels < 1:
        raise SimulationError(f"levels must be >= 1, got {levels}")
    out = np.asarray(coeffs).astype(np.int64).copy()
    rows, cols = out.shape
    sizes = [(rows >> k, cols >> k) for k in range(levels)]
    for r, c in reversed(sizes):
        out[:r, :c] = idwt53_2d(out[:r, :c])
    return out


# ----------------------------------------------------------------------
# FIR / IIR filters (the "RIF" / "RII" macro-operators)
# ----------------------------------------------------------------------


def fir(signal: Sequence[int], taps: Sequence[int]) -> List[int]:
    """Transversal FIR: ``y[n] = sum_k taps[k] * x[n-k]`` (x[<0] = 0)."""
    x = [int(v) for v in signal]
    c = [int(v) for v in taps]
    if not c:
        raise SimulationError("FIR needs at least one tap")
    out = []
    for n in range(len(x)):
        acc = 0
        for k, coeff in enumerate(c):
            if n - k >= 0:
                acc += coeff * x[n - k]
        out.append(acc)
    return out


def iir_first_order(signal: Sequence[int], b0: int, a1: int,
                    shift: int = 0) -> List[int]:
    """First-order recursive filter ``y[n] = b0*x[n] + a1*y[n-1] >> shift``.

    The optional *shift* scales the feedback term (fixed-point gain < 1),
    matching what the fabric computes with ``MADD`` + ``ASR``.
    """
    y_prev = 0
    out = []
    for v in signal:
        y = b0 * int(v) + ((a1 * y_prev) >> shift if shift else a1 * y_prev)
        out.append(y)
        y_prev = y
    return out


def moving_average(signal: Sequence[int], window: int) -> List[int]:
    """Simple boxcar filter (integer sum over the last *window* samples)."""
    if window < 1:
        raise SimulationError(f"window must be >= 1, got {window}")
    return fir(signal, [1] * window)


# ----------------------------------------------------------------------
# Scenario library (CORDIC / NCO / resampler / effects / RingMAC)
#
# Every function below is the bit-exact spec of one fabric recipe in the
# DSP scenario library: signed-integer arithmetic with the fabric's
# 16-bit wrap semantics (see repro.core.alu), no floating point.  The
# helpers mirror the ALU handlers one for one so each reference stays
# independent of the fabric implementation it verifies.
# ----------------------------------------------------------------------

_MASK16 = 0xFFFF


def _wrap16(value: int) -> int:
    """Two's-complement 16-bit wrap of a Python int (signed result)."""
    return ((int(value) + 0x8000) & _MASK16) - 0x8000


def _xor16(a: int, b: int) -> int:
    """Bitwise XOR on the 16-bit words of two signed values."""
    return _wrap16((int(a) & _MASK16) ^ (int(b) & _MASK16))


def _mulh16(a: int, b: int) -> int:
    """High 16 bits of the signed 16x16 product (arithmetic shift)."""
    return (int(a) * int(b)) >> 16


def _abs16(a: int) -> int:
    """|a| with the hardware wrap: |INT16_MIN| stays INT16_MIN."""
    return _wrap16(abs(int(a)))


def _avg16(a: int, b: int) -> int:
    """Signed average ``(a + b) >> 1`` (17-bit sum, exact)."""
    return (int(a) + int(b)) >> 1


#: Binary-angle arctangent table: ``round(atan(2^-i) / (2*pi) * 2^16)``.
#: A full turn is 2^16 angle units, so +/-pi is +/-32768 — the wrap of
#: the 16-bit word IS the wrap of the circle.
ATAN16 = (8192, 4836, 2555, 1297, 651, 326, 163, 81,
          41, 20, 10, 5, 3, 1, 1, 0)

#: CORDIC processing gain ``prod sqrt(1 + 2^-2i)`` (float, for the
#: accuracy property tests — the fabric never computes it).
CORDIC_GAIN = 1.6467602581210656


def cordic_rotate(x: int, y: int, z: int,
                  iterations: int = 12) -> Tuple[int, int, int]:
    """Rotation-mode CORDIC: rotate ``(x, y)`` by angle ``z`` (shift-add).

    Angle unit: 2^16 per turn (``ATAN16`` convention).  Each iteration
    is branch-free — the rotation direction becomes a sign mask
    ``m = z >> 15`` and conditional negation is ``(v ^ m) - m`` — so the
    fabric mapping needs no control flow, only ASR/XOR/SUB/ADD.
    Converges for ``|z| <~ 0.27`` turns; the output magnitude carries
    the :data:`CORDIC_GAIN` factor.
    """
    if not 1 <= iterations <= len(ATAN16):
        raise SimulationError(
            f"iterations must be 1..{len(ATAN16)}, got {iterations}")
    x, y, z = _wrap16(x), _wrap16(y), _wrap16(z)
    for i in range(iterations):
        m = z >> 15                      # 0 or -1: the direction mask
        ex = _wrap16(_xor16(y >> i, m) - m)
        ey = _wrap16(_xor16(x >> i, m) - m)
        ez = _wrap16(_xor16(ATAN16[i], m) - m)
        x, y, z = _wrap16(x - ex), _wrap16(y + ey), _wrap16(z - ez)
    return x, y, z


def cordic_vector(x: int, y: int, z: int = 0,
                  iterations: int = 12) -> Tuple[int, int, int]:
    """Vectoring-mode CORDIC: drive ``y`` to 0, accumulating the angle.

    Returns ``(x', y', z')`` where ``x' ~ CORDIC_GAIN * |(x, y)|`` and
    ``z' ~ z + atan2(y, x)`` in 2^16-per-turn units (for ``x > 0``).
    The direction mask is ``~(y >> 15)`` — rotate toward the axis.
    """
    if not 1 <= iterations <= len(ATAN16):
        raise SimulationError(
            f"iterations must be 1..{len(ATAN16)}, got {iterations}")
    x, y, z = _wrap16(x), _wrap16(y), _wrap16(z)
    for i in range(iterations):
        m = _wrap16(~(y >> 15))          # -1 when y >= 0: rotate down
        ex = _wrap16(_xor16(y >> i, m) - m)
        ey = _wrap16(_xor16(x >> i, m) - m)
        ez = _wrap16(_xor16(ATAN16[i], m) - m)
        x, y, z = _wrap16(x - ex), _wrap16(y + ey), _wrap16(z - ez)
    return x, y, z


def sine_shape(phase: int) -> int:
    """Parabolic sine of a 16-bit phase word (amplitude ~16380).

    ``sin(pi * p / 32768) ~ 4 p (32767 - |p|) / 2^16`` — one ABS, one
    SUB, one MULH and one SHL on the fabric; |error| stays under ~6% of
    full scale (the classic quarter-wave parabola bound).
    """
    p = _wrap16(phase)
    b = _wrap16(32767 - _abs16(p))
    return _wrap16(_mulh16(p, b) << 2)


def nco(fcw: int, length: int, phase: int = 0) -> List[int]:
    """Numerically controlled oscillator: phase accumulator + sine shaper.

    Cycle *n* outputs ``sine_shape(phase + (n+1)*fcw)`` — the fabric's
    ``ADD SELF`` accumulator publishes its first sum one cycle in, so
    the reference starts at ``phase + fcw``, not ``phase``.
    """
    if length < 0:
        raise SimulationError(f"length must be >= 0, got {length}")
    out = []
    p = _wrap16(phase)
    for _ in range(length):
        p = _wrap16(p + fcw)
        out.append(sine_shape(p))
    return out


def nco_phases(fcw: int, length: int, phase: int = 0) -> List[int]:
    """The phase-accumulator stream behind :func:`nco` (for the table
    backend of the oscillator recipe and the pipeline references)."""
    out = []
    p = _wrap16(phase)
    for _ in range(length):
        p = _wrap16(p + fcw)
        out.append(p)
    return out


def vca(signal: Sequence[int], gains: Sequence[int]) -> List[int]:
    """Voltage-controlled amplifier: ``y = (x * g >> 16) << 1``.

    *gains* is a Q15 control stream (32767 ~ unity); MULH keeps the
    product exact with no possibility of overflow, the SHL restores
    unity scale.  Streams shorter than *signal* read 0 (idle port).
    """
    out = []
    for n, x in enumerate(signal):
        g = int(gains[n]) if n < len(gains) else 0
        out.append(_wrap16(_mulh16(_wrap16(x), _wrap16(g)) << 1))
    return out


def mix(signals: Sequence[Sequence[int]],
        gains: Sequence[int]) -> List[int]:
    """N-input mixer: ``y = sum_i (x_i * g_i >> 16)`` (Q15 gains, wrap).

    The per-channel MULH terms are exact; the accumulation wraps mod
    2^16 exactly like the fabric's ADD tree.
    """
    if len(signals) != len(gains):
        raise SimulationError(
            f"{len(signals)} signals vs {len(gains)} gains")
    length = max((len(s) for s in signals), default=0)
    out = []
    for n in range(length):
        acc = 0
        for s, g in zip(signals, gains):
            x = int(s[n]) if n < len(s) else 0
            acc = _wrap16(acc + _mulh16(_wrap16(x), _wrap16(int(g))))
        out.append(acc)
    return out


#: Half-band interpolator weights of the 2x polyphase resampler:
#: ``odd = (9*(x[n-1] + x[n-2]) - (x[n] + x[n-3]) + 8) >> 4``.
HALFBAND_TAPS = (-1, 9, 9, -1)


def upsample2(signal: Sequence[int]) -> List[int]:
    """2x polyphase upsampler (half-band): even phase is the delayed
    input, odd phase the 4-tap interpolator.  Returns ``2 * len`` words,
    phases interleaved; all arithmetic wraps mod 2^16 like the fabric.
    """
    x = [_wrap16(v) for v in signal]

    def at(i: int) -> int:
        return x[i] if 0 <= i < len(x) else 0

    out = []
    for n in range(len(x)):
        even = at(n - 1)
        s1 = _wrap16(at(n - 1) + at(n - 2))
        s2 = _wrap16(at(n) + at(n - 3))
        t = _wrap16(_wrap16(9 * s1) - s2)
        odd = _wrap16(t + 8) >> 4
        out.append(even)
        out.append(odd)
    return out


def downsample2(signal: Sequence[int]) -> List[int]:
    """2x decimator: triangle anti-alias filter, keep every other sample.

    Full-rate ``y[n] = (x[n] + 2 x[n-1] + x[n-2] + 2) >> 2`` decimated
    on the odd phase (each output consumes two fresh input samples).
    """
    x = [_wrap16(v) for v in signal]

    def at(i: int) -> int:
        return x[i] if 0 <= i < len(x) else 0

    full = []
    for n in range(len(x)):
        t = _wrap16(_wrap16(at(n) + at(n - 2)) + _wrap16(at(n - 1) << 1))
        full.append(_wrap16(t + 2) >> 2)
    return full[1::2]


#: Q8 interpolation weights of the 3x resampler phases (sum 256).
THIRD_TAPS = (85, 171)


def upsample3(signal: Sequence[int]) -> List[int]:
    """3x polyphase upsampler: linear interpolation at thirds (Q8)."""
    x = [_wrap16(v) for v in signal]

    def at(i: int) -> int:
        return x[i] if 0 <= i < len(x) else 0

    out = []
    for n in range(len(x)):
        a, b = at(n - 1), at(n - 2)
        out.append(a)
        p1 = _wrap16(_wrap16(_wrap16(171 * a) + _wrap16(85 * b)) + 128)
        out.append(p1 >> 8)
        p2 = _wrap16(_wrap16(_wrap16(85 * a) + _wrap16(171 * b)) + 128)
        out.append(p2 >> 8)
    return out


def downsample3(signal: Sequence[int]) -> List[int]:
    """3x decimator: Q8 triangle filter, keep every third sample."""
    x = [_wrap16(v) for v in signal]

    def at(i: int) -> int:
        return x[i] if 0 <= i < len(x) else 0

    full = []
    for n in range(len(x)):
        t = _wrap16(_wrap16(85 * _wrap16(at(n) + at(n - 2)))
                    + _wrap16(86 * at(n - 1)))
        full.append(_wrap16(t + 128) >> 8)
    return full[2::3]


def chorus(signal: Sequence[int], depth: int = 6) -> List[int]:
    """Chorus voice: ``y = (x[n] + x[n-depth]) >> 1`` (signed average)."""
    if depth < 1:
        raise SimulationError(f"depth must be >= 1, got {depth}")
    x = [_wrap16(v) for v in signal]
    return [_avg16(x[n], x[n - depth] if n >= depth else 0)
            for n in range(len(x))]


def echo(signal: Sequence[int], delay: int, gain: int) -> List[int]:
    """Feedback echo: ``y[n] = x[n] + (y[n-delay] * gain >> 16)``.

    *gain* is Q16 (32767 ~ 0.5 feedback); the recursion wraps mod 2^16
    exactly like the fabric's ADD.  This is the spec of the ring-FIFO
    feedback loop — *delay* equals the loop length in fabric cycles.
    """
    if delay < 1:
        raise SimulationError(f"delay must be >= 1, got {delay}")
    out: List[int] = []
    for n, v in enumerate(signal):
        back = out[n - delay] if n >= delay else 0
        out.append(_wrap16(_wrap16(v) + _mulh16(back, _wrap16(gain))))
    return out


def complex_multiply(re_a: Sequence[int], im_a: Sequence[int],
                     re_b: Sequence[int], im_b: Sequence[int],
                     ) -> Tuple[List[int], List[int]]:
    """Streamed complex multiply with the fabric's MUL-low wrap.

    ``re = a*c - b*d``, ``im = a*d + b*c`` — every product keeps the low
    16 bits (signed wrap), every sum wraps, exactly like a MUL/SUB/ADD
    tree on the fabric.  INT16-boundary behaviour is part of the spec.
    """
    length = len(re_a)
    if not (len(im_a) == len(re_b) == len(im_b) == length):
        raise SimulationError("complex streams must share one length")
    re_out, im_out = [], []
    for a, b, c, d in zip(re_a, im_a, re_b, im_b):
        a, b, c, d = (_wrap16(a), _wrap16(b), _wrap16(c), _wrap16(d))
        re_out.append(_wrap16(_wrap16(a * c) - _wrap16(b * d)))
        im_out.append(_wrap16(_wrap16(a * d) + _wrap16(b * c)))
    return re_out, im_out


def complex_magnitude(re: Sequence[int], im: Sequence[int]) -> List[int]:
    """Alpha-max-beta-min magnitude: ``max(|re|,|im|) + min(...) >> 1``.

    Multiplier-free (ABS/MAX/MIN/ASR/ADD); worst-case ~12% high, the
    classic estimator bound tested by the accuracy properties.
    """
    if len(re) != len(im):
        raise SimulationError("re/im streams must share one length")
    out = []
    for a, b in zip(re, im):
        ma, mb = _abs16(a), _abs16(b)
        hi, lo = max(ma, mb), min(ma, mb)
        out.append(_wrap16(hi + (lo >> 1)))
    return out


def ringmac(a_streams: Sequence[Sequence[int]],
            b_streams: Sequence[Sequence[int]],
            ) -> List[List[int]]:
    """N clients time-multiplexing one MAC: running dot products.

    Client *c*'s stream of partial sums ``acc_c[n] = sum_{k<=n}
    a_c[k]*b_c[k]`` (wrapping MAC) — the tiliqua RingMAC idiom where one
    multiply-accumulate unit serves every client at 1 MAC/cycle, each
    request tagged by its time slot.
    """
    if len(a_streams) != len(b_streams):
        raise SimulationError(
            f"{len(a_streams)} a-streams vs {len(b_streams)} b-streams")
    results = []
    for a_s, b_s in zip(a_streams, b_streams):
        if len(a_s) != len(b_s):
            raise SimulationError("client streams must share one length")
        acc, sums = 0, []
        for a, b in zip(a_s, b_s):
            acc = _wrap16(_wrap16(a) * _wrap16(b) + acc)
            sums.append(acc)
        results.append(sums)
    return results


# ----------------------------------------------------------------------
# Streaming-pipeline references (synth voice, effects chain)
# ----------------------------------------------------------------------


def synth_voice_dry(envelope: Sequence[int], fcw_a: int, fcw_b: int,
                    ) -> List[int]:
    """The polyphonic voice plane of the synth pipeline, cycle-exact.

    Models the 13-layer fabric configuration stage by stage: two NCO
    voices (phase accumulator + :func:`sine_shape`), an AVG2 mixer and a
    MULH VCA driven by the host *envelope* stream.  Output sample *u*
    (one per fabric cycle, zeros while the pipeline fills) is::

        y[u] = (mulh(avg2(shape(pB[u-7]), shape(pA[u-12])),
                     env[u-1]) << 1)

    with ``pX[v] = (v+1)*fcw_x`` for ``v >= 0`` else 0 — exactly what
    the plane computes, pipeline-fill zeros included.
    """
    def phase(fcw: int, v: int) -> int:
        return _wrap16(fcw * (v + 1)) if v >= 0 else 0

    def env(v: int) -> int:
        return _wrap16(envelope[v]) if 0 <= v < len(envelope) else 0

    out = []
    for u in range(len(envelope)):
        mixed = _avg16(sine_shape(phase(fcw_b, u - 7)),
                       sine_shape(phase(fcw_a, u - 12)))
        out.append(_wrap16(_mulh16(mixed, env(u - 1)) << 1))
    return out


#: Cycles the synth voice plane takes from phase word to output tap.
SYNTH_VOICE_LATENCY = 13


def synth_voice_pipeline(envelope: Sequence[int], fcw_a: int, fcw_b: int,
                         echo_delay: int, echo_gain: int) -> List[int]:
    """Golden model of the full synth pipeline: voices -> VCA -> echo."""
    return echo(synth_voice_dry(envelope, fcw_a, fcw_b),
                echo_delay, echo_gain)


def effects_chain_pipeline(signal: Sequence[int], depth: int,
                           master_gain: int, echo_delay: int,
                           echo_gain: int) -> List[int]:
    """Golden model of the effects chain: chorus -> VCA -> echo."""
    wet = vca(chorus(signal, depth), [master_gain] * len(signal))
    return echo(wet, echo_delay, echo_gain)
