"""Tests for the Ring-level microinstruction assembler syntax."""

import pytest
from hypothesis import given

from repro.asm.microasm import (
    format_dnode_op,
    format_route,
    parse_dnode_op,
    parse_route,
)
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.switch import PortSource
from repro.errors import AssemblerError

from tests.core.test_isa import microwords


def _canonical(mw: MicroWord) -> MicroWord:
    """Normalise fields the instruction does not consume.

    The assembler text has nowhere to carry dead fields (an unused
    immediate, a NOP's operands, a unary op's second source), so the
    format->parse roundtrip is only expected to hold on canonical words.
    """
    if mw.op is Opcode.NOP:
        return MicroWord(flags=mw.flags)
    src_b = mw.src_b if mw.is_binary else Source.ZERO
    uses_imm = (Source.IMM in (mw.src_a, src_b)
                or mw.op in (Opcode.MADD, Opcode.MSUB))
    return MicroWord(op=mw.op, src_a=mw.src_a, src_b=src_b, dst=mw.dst,
                     flags=mw.flags, imm=mw.imm if uses_imm else 0)


class TestParse:
    def test_nop(self):
        assert parse_dnode_op("nop") == MicroWord()

    def test_binary_op(self):
        mw = parse_dnode_op("add out, in1, in2")
        assert mw == MicroWord(Opcode.ADD, Source.IN1, Source.IN2, Dest.OUT)

    def test_unary_op(self):
        mw = parse_dnode_op("abs r2, in1")
        assert mw == MicroWord(Opcode.ABS, Source.IN1, dst=Dest.R2)

    def test_immediate_operand(self):
        mw = parse_dnode_op("add out, in1, #-5")
        assert mw.src_b is Source.IMM
        assert mw.imm == 0xFFFB

    def test_hex_immediate(self):
        mw = parse_dnode_op("mov out, #0x1F")
        assert mw.imm == 0x1F

    def test_rp_operand(self):
        mw = parse_dnode_op("mov out, rp(2,1)")
        assert mw.src_a == Source.rp(2, 1)

    def test_madd_coefficient(self):
        mw = parse_dnode_op("madd out, in1, rp(1,1), #7")
        assert mw.op is Opcode.MADD
        assert (mw.src_a, mw.src_b) == (Source.IN1, Source.rp(1, 1))
        assert mw.imm == 7

    def test_flags(self):
        mw = parse_dnode_op("absdiff r1, fifo1, fifo2 [pop1,pop2]")
        assert mw.flags == Flag.POP_FIFO1 | Flag.POP_FIFO2

    def test_wout_flag(self):
        mw = parse_dnode_op("mac r0, in1, in2 [wout]")
        assert mw.flags & Flag.WRITE_OUT

    def test_case_insensitive(self):
        assert parse_dnode_op("ADD OUT, IN1, IN2") == \
            parse_dnode_op("add out, in1, in2")

    def test_self_and_zero_sources(self):
        mw = parse_dnode_op("add out, self, zero")
        assert (mw.src_a, mw.src_b) == (Source.SELF, Source.ZERO)


class TestParseErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("", "empty"),
        ("frobnicate out, in1", "unknown Dnode opcode"),
        ("add", "destination"),
        ("add outt, in1, in2", "unknown destination"),
        ("add out, in9, in2", "unknown operand source"),
        ("add out, in1", "expects 2"),
        ("abs out, in1, in2", "expects 1"),
        ("nop out", "no operands"),
        ("add out, in1, in2 [zing]", "unknown flag"),
        ("mac out, in1, in2", "accumulates"),
    ])
    def test_error_messages(self, text, fragment):
        with pytest.raises(AssemblerError, match=fragment):
            parse_dnode_op(text)

    def test_line_number_in_error(self):
        with pytest.raises(AssemblerError, match="line 12"):
            parse_dnode_op("bogus out, in1", line=12)


class TestRoundTrip:
    @given(microwords().map(_canonical))
    def test_format_parse_identity(self, mw):
        assert parse_dnode_op(format_dnode_op(mw)) == mw


class TestRoutes:
    @pytest.mark.parametrize("text,expected", [
        ("up0", PortSource.up(0)),
        ("up1", PortSource.up(1)),
        ("host3", PortSource.host(3)),
        ("rp(4,2)", PortSource.rp(4, 2)),
        ("bus", PortSource.bus()),
        ("zero", PortSource.zero()),
    ])
    def test_parse(self, text, expected):
        assert parse_route(text) == expected

    @pytest.mark.parametrize("source", [
        PortSource.up(0), PortSource.host(2), PortSource.rp(2, 1),
        PortSource.bus(), PortSource.zero(),
    ])
    def test_roundtrip(self, source):
        assert parse_route(format_route(source)) == source

    def test_unknown_route(self):
        with pytest.raises(AssemblerError, match="unknown route"):
            parse_route("sideways3")
