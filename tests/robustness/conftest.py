"""Shared fixtures for the robustness suite.

``ENGINES`` parameterizes tests over all four execution engines; the
``busy_factory`` builds identically configured rings with every kind of
live state (registers, OUT chains, feedback pipeline taps, FIFO
backlogs, a mid-loop local program), so faults have real state to land
in and recovery is exercised end to end.
"""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource

#: (id, Ring kwargs) for each execution engine.
ENGINES = [
    ("interpreter", dict(backend="interpreter")),
    ("fastpath", dict(backend="fastpath")),
    ("macro", dict(backend="fastpath", macro_step=2)),
    ("batch", dict(backend="batch", batch_size=4)),
]


def make_busy_ring(**kwargs) -> Ring:
    """A 3x2 ring with live state in every fault-site category."""
    ring = Ring(RingGeometry(layers=3, width=2), **kwargs)
    cfg = ring.config
    # d0.0 accumulates its IN1 port — the Rp(2,1) feedback tap routed
    # below — so corruption anywhere in switch 0's pipeline lands in
    # persistent register state instead of silently shifting out.
    cfg.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.R0, Source.IN1, Dest.R0))
    cfg.write_microword(0, 1, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=1))
    cfg.write_local_program(1, 0, [
        MicroWord(Opcode.MAC, Source.FIFO1, Source.IMM, Dest.R1,
                  flags=Flag.POP_FIFO1, imm=2),
        MicroWord(Opcode.MOV, Source.R1, dst=Dest.OUT),
    ])
    cfg.write_mode(1, 0, DnodeMode.LOCAL)
    cfg.write_microword(2, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    cfg.write_switch_route(1, 0, 1, PortSource.up(0))
    cfg.write_switch_route(2, 0, 1, PortSource.up(0))
    cfg.write_switch_route(0, 0, 1, PortSource.rp(2, 1))
    ring.push_fifo(1, 0, 1, list(range(5, 45)))
    return ring


def busy_factory(**kwargs):
    """A zero-argument factory of identical busy rings."""
    return lambda: make_busy_ring(**kwargs)


@pytest.fixture(params=ENGINES, ids=[name for name, _ in ENGINES])
def engine_kwargs(request):
    """Ring constructor kwargs for each execution engine."""
    return request.param[1]
