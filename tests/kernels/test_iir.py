"""Tests for the IIR and MAC macro-operator kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.iir import first_order_iir, mac_accumulate
from repro.kernels.reference import iir_first_order

SIGNAL = [5, 3, -2, 7, 1, -4, 6, 2]


class TestFirstOrderIir:
    def test_integrator(self):
        result = first_order_iir([1] * 6, b0=1, a1=1)
        assert result.outputs == [1, 2, 3, 4, 5, 6]

    def test_matches_reference(self):
        result = first_order_iir(SIGNAL, b0=3, a1=1)
        assert result.outputs == iir_first_order(SIGNAL, 3, 1)

    def test_negative_feedback(self):
        result = first_order_iir(SIGNAL, b0=2, a1=-1)
        assert result.outputs == iir_first_order(SIGNAL, 2, -1)

    def test_two_dnodes_one_sample_per_cycle(self):
        result = first_order_iir(SIGNAL, b0=1, a1=1)
        assert result.dnodes_used == 2
        # 1 sample/cycle + 2-stage latency
        assert result.cycles == len(SIGNAL) + 2

    @given(st.lists(st.integers(min_value=-20, max_value=20),
                    min_size=1, max_size=12),
           st.integers(min_value=-3, max_value=3),
           st.sampled_from([-1, 0, 1]))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, signal, b0, a1):
        result = first_order_iir(signal, b0=b0, a1=a1)
        assert result.outputs == iir_first_order(signal, b0, a1)


class TestMacAccumulate:
    def test_dot_product(self):
        assert mac_accumulate([1, 2, 3], [4, 5, 6]) == 32

    def test_negative_values(self):
        assert mac_accumulate([-1, 2], [3, -4]) == -11

    def test_single_element(self):
        assert mac_accumulate([7], [6]) == 42

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mac_accumulate([1, 2], [1])

    @given(st.lists(st.integers(min_value=-30, max_value=30), min_size=1,
                    max_size=20),
           st.integers(min_value=-30, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_property_dot_product(self, a, scale):
        b = [scale] * len(a)
        assert mac_accumulate(a, b) == sum(x * scale for x in a)

    def test_one_mac_per_cycle(self):
        """The paper's single-cycle MAC claim: n products in n cycles."""
        from repro.core.ring import make_ring
        ring = make_ring(4)
        mac_accumulate(list(range(1, 11)), list(range(1, 11)), ring=ring)
        assert ring.cycles == 10


class TestBiquad:
    def test_impulse_response(self):
        from repro.kernels.iir import biquad, reference_biquad

        # y[n] = x[n] + y[n-1] - ... a simple resonator
        sig = [8] + [0] * 7
        result = biquad(sig, b0=1, a1=1, a2=-1)
        assert result.outputs == reference_biquad(sig, 1, 1, -1)
        # known recursion: 8, 8, 0, -8, -8, 0, 8, 8 (period-6 rotation)
        assert result.outputs == [8, 8, 0, -8, -8, 0, 8, 8]

    def test_matches_reference(self):
        from repro.kernels.iir import biquad, reference_biquad

        sig = [5, 3, -2, 7, 1, -4, 6, 2]
        result = biquad(sig, b0=2, a1=1, a2=-1)
        assert result.outputs == reference_biquad(sig, 2, 1, -1)

    def test_single_dnode_five_cycles_per_sample(self):
        from repro.kernels.iir import biquad

        sig = [1, 2, 3, 4]
        result = biquad(sig, b0=1, a1=0, a2=0)
        assert result.dnodes_used == 1
        assert result.cycles == 5 * len(sig)

    def test_degenerates_to_first_order(self):
        from repro.kernels.iir import biquad
        from repro.kernels.reference import iir_first_order

        sig = [3, -1, 4, 1, -5]
        result = biquad(sig, b0=3, a1=1, a2=0)
        assert result.outputs == iir_first_order(sig, 3, 1)

    def test_program_is_five_slots(self):
        from repro.kernels.iir import biquad_program

        assert len(biquad_program(1, 2, 3)) == 5
